//! Overhead of the `irma-obs` instrumentation on the end-to-end workflow.
//!
//! The observability layer must be effectively free when nobody asked for
//! metrics: a disabled [`Metrics`] handle reduces every call to a single
//! `Option` check and never touches the clock. This bench runs the full
//! PAI-profile pipeline (generate → encode → mine → generate rules →
//! prune) with a disabled sink and with an enabled sink, interleaved, and
//! compares the medians. The enabled sink does strictly more work than
//! the disabled one (clock reads, mutex locks, event pushes), so its
//! overhead over the disabled baseline bounds the instrumentation cost
//! from above. The acceptance bar is <2% median overhead.
//!
//! The same bar applies to the execution-budget guard: the fallible
//! pipeline with every cap armed (itemsets, tree bytes, a generous
//! deadline) does one atomic `fetch_add` per emission plus a strided
//! clock read, and must also stay within 2% of the unbudgeted baseline.
//!
//! And to the pool's scheduler telemetry: a width-4 pool with per-worker
//! counters on (the default) runs the same end-to-end pipeline as one
//! built with `telemetry(false)` — the counters are relaxed increments
//! on cache-line-padded per-worker slots, so counters-on must stay
//! within 2% of counters-off.
//!
//! Plain `Instant` timing rather than criterion: the unit of work is a
//! multi-second end-to-end run, so a handful of interleaved samples and a
//! median are more informative than criterion's statistics on 10+ warm
//! iterations.

use std::hint::black_box;
use std::time::{Duration, Instant};

use irma_core::{
    analyze_with, pai_spec, try_analyze, AnalysisConfig, EventSink, ExecBudget, Metrics,
};
use irma_synth::{pai, TraceConfig};

const SAMPLES: usize = 7;
const VARIANTS: usize = 6;

/// Pool width for the scheduler-telemetry variants: wide enough that
/// steals and parks actually happen, narrow enough for CI runners.
const SCHED_WIDTH: usize = 4;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let config = TraceConfig {
        n_jobs: 20_000,
        seed: 0xdcc0,
        max_monitor_samples: 128,
    };
    let merged = pai(&config).merged();
    let spec = pai_spec();
    let analysis_config = AnalysisConfig::default();
    // Every cap armed but none close to tripping: the steady-state cost
    // of guarded mining, not the cost of degrading.
    let budgeted_config = AnalysisConfig {
        budget: ExecBudget {
            max_itemsets: Some(u64::MAX / 2),
            max_tree_bytes: Some(u64::MAX / 2),
            deadline: Some(Duration::from_secs(3600)),
            panic_after_emits: None,
        },
        ..AnalysisConfig::default()
    };

    // Warm-up: page in the trace and populate allocator caches.
    let warm = analyze_with(&merged, &spec, &analysis_config, &Metrics::disabled());
    println!(
        "warm-up: {} itemsets, {} rules",
        warm.frequent.len(),
        warm.rules.len()
    );

    // Variant 0: disabled handle (baseline, the gated comparison).
    // Variant 1: enabled registry, no event sink (gated, <2%).
    // Variant 2: enabled registry streaming JSONL to a null writer —
    //            informational only; it measures event serialization
    //            without charging the bench for filesystem throughput.
    // Variant 3: fallible pipeline, all budget caps armed, metrics
    //            disabled (gated, <2% — the cost of the guard itself).
    // Variant 4: width-4 pool, scheduler counters off (baseline for 5).
    // Variant 5: width-4 pool, scheduler counters on (gated, <2% over 4).
    let mut samples_ms: [Vec<f64>; VARIANTS] = std::array::from_fn(|_| Vec::with_capacity(SAMPLES));
    for round in 0..SAMPLES {
        // Rotate the starting variant so drift (thermal, cache, allocator
        // state) hits all variants equally.
        for slot in 0..VARIANTS {
            let variant = (round + slot) % VARIANTS;
            let start;
            let n_rules = match variant {
                3 => {
                    start = Instant::now();
                    let analysis = try_analyze(&merged, &spec, &budgeted_config)
                        .expect("generous budget cannot trip");
                    assert!(analysis.degradation.is_none());
                    analysis.rules.len()
                }
                4 | 5 => {
                    // Pool construction stays outside the timed region:
                    // the question is steady-state counter cost on the
                    // fork/steal hot path, not spawn cost.
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(SCHED_WIDTH)
                        .telemetry(variant == 5)
                        .build()
                        .expect("pool builds");
                    let metrics = Metrics::disabled();
                    start = Instant::now();
                    let analysis =
                        pool.install(|| analyze_with(&merged, &spec, &analysis_config, &metrics));
                    // Counters exist exactly when telemetry is on, so the
                    // two variants really do differ only in counting.
                    assert_eq!(pool.sched_stats().workers.is_empty(), variant == 4);
                    analysis.rules.len()
                }
                _ => {
                    let metrics = match variant {
                        0 => Metrics::disabled(),
                        1 => Metrics::enabled(),
                        _ => Metrics::enabled()
                            .with_event_sink(EventSink::from_writer(Box::new(std::io::sink()))),
                    };
                    start = Instant::now();
                    let analysis = analyze_with(&merged, &spec, &analysis_config, &metrics);
                    analysis.rules.len()
                }
            };
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            black_box(n_rules);
            samples_ms[variant].push(elapsed);
        }
    }

    let disabled = median(&mut samples_ms[0]);
    let enabled = median(&mut samples_ms[1]);
    let streaming = median(&mut samples_ms[2]);
    let budgeted = median(&mut samples_ms[3]);
    let sched_off = median(&mut samples_ms[4]);
    let sched_on = median(&mut samples_ms[5]);
    let overhead = (enabled / disabled - 1.0) * 100.0;
    let streaming_overhead = (streaming / disabled - 1.0) * 100.0;
    let budget_overhead = (budgeted / disabled - 1.0) * 100.0;
    let sched_overhead = (sched_on / sched_off - 1.0) * 100.0;
    println!(
        "pai end-to-end, {} jobs, median of {SAMPLES}:",
        config.n_jobs
    );
    println!("  disabled sink:  {disabled:9.1} ms  (baseline)");
    println!("  enabled sink:   {enabled:9.1} ms  ({overhead:+.2}%)");
    println!("  streaming sink: {streaming:9.1} ms  ({streaming_overhead:+.2}%, informational)");
    println!("  budget guard:   {budgeted:9.1} ms  ({budget_overhead:+.2}%)");
    println!("  sched counters off (width {SCHED_WIDTH}): {sched_off:9.1} ms  (baseline)");
    println!(
        "  sched counters on  (width {SCHED_WIDTH}): {sched_on:9.1} ms  ({sched_overhead:+.2}%)"
    );
    println!(
        "instrumentation overhead {overhead:+.2}% — {}",
        if overhead < 2.0 {
            "PASS (<2%)"
        } else {
            "FAIL (>=2%)"
        }
    );
    println!(
        "budget-guard overhead {budget_overhead:+.2}% — {}",
        if budget_overhead < 2.0 {
            "PASS (<2%)"
        } else {
            "FAIL (>=2%)"
        }
    );
    println!(
        "scheduler-telemetry overhead {sched_overhead:+.2}% — {}",
        if sched_overhead < 2.0 {
            "PASS (<2%)"
        } else {
            "FAIL (>=2%)"
        }
    );
}
