//! Overhead of the `irma-obs` instrumentation on the end-to-end workflow.
//!
//! The observability layer must be effectively free when nobody asked for
//! metrics: a disabled [`Metrics`] handle reduces every call to a single
//! `Option` check and never touches the clock. This bench runs the full
//! PAI-profile pipeline (generate → encode → mine → generate rules →
//! prune) with a disabled sink and with an enabled sink, interleaved, and
//! compares the medians. The enabled sink does strictly more work than
//! the disabled one (clock reads, mutex locks, event pushes), so its
//! overhead over the disabled baseline bounds the instrumentation cost
//! from above. The acceptance bar is <2% median overhead.
//!
//! Plain `Instant` timing rather than criterion: the unit of work is a
//! multi-second end-to-end run, so a handful of interleaved samples and a
//! median are more informative than criterion's statistics on 10+ warm
//! iterations.

use std::hint::black_box;
use std::time::Instant;

use irma_core::{analyze_with, pai_spec, AnalysisConfig, EventSink, Metrics};
use irma_synth::{pai, TraceConfig};

const SAMPLES: usize = 7;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let config = TraceConfig {
        n_jobs: 20_000,
        seed: 0xdcc0,
        max_monitor_samples: 128,
    };
    let merged = pai(&config).merged();
    let spec = pai_spec();
    let analysis_config = AnalysisConfig::default();

    // Warm-up: page in the trace and populate allocator caches.
    let warm = analyze_with(&merged, &spec, &analysis_config, &Metrics::disabled());
    println!(
        "warm-up: {} itemsets, {} rules",
        warm.frequent.len(),
        warm.rules.len()
    );

    // Variant 0: disabled handle (baseline, the gated comparison).
    // Variant 1: enabled registry, no event sink (the gated variant).
    // Variant 2: enabled registry streaming JSONL to a null writer —
    //            informational only; it measures event serialization
    //            without charging the bench for filesystem throughput.
    let mut samples_ms: [Vec<f64>; 3] = [
        Vec::with_capacity(SAMPLES),
        Vec::with_capacity(SAMPLES),
        Vec::with_capacity(SAMPLES),
    ];
    for round in 0..SAMPLES {
        // Rotate the starting variant so drift (thermal, cache, allocator
        // state) hits all variants equally.
        for slot in 0..3 {
            let variant = (round + slot) % 3;
            let metrics = match variant {
                0 => Metrics::disabled(),
                1 => Metrics::enabled(),
                _ => Metrics::enabled()
                    .with_event_sink(EventSink::from_writer(Box::new(std::io::sink()))),
            };
            let start = Instant::now();
            let analysis = analyze_with(&merged, &spec, &analysis_config, &metrics);
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            black_box(analysis.rules.len());
            samples_ms[variant].push(elapsed);
        }
    }

    let disabled = median(&mut samples_ms[0]);
    let enabled = median(&mut samples_ms[1]);
    let streaming = median(&mut samples_ms[2]);
    let overhead = (enabled / disabled - 1.0) * 100.0;
    let streaming_overhead = (streaming / disabled - 1.0) * 100.0;
    println!(
        "pai end-to-end, {} jobs, median of {SAMPLES}:",
        config.n_jobs
    );
    println!("  disabled sink:  {disabled:9.1} ms  (baseline)");
    println!("  enabled sink:   {enabled:9.1} ms  ({overhead:+.2}%)");
    println!("  streaming sink: {streaming:9.1} ms  ({streaming_overhead:+.2}%, informational)");
    println!(
        "instrumentation overhead {overhead:+.2}% — {}",
        if overhead < 2.0 {
            "PASS (<2%)"
        } else {
            "FAIL (>=2%)"
        }
    );
}
