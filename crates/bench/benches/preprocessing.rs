//! P3 (§III-E): preprocessing costs and the binning ablation.
//!
//! Measures the per-stage cost of the workflow front end — CSV parsing,
//! the scheduler/monitoring join, equal-frequency vs equal-width binning,
//! and full transaction encoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use irma_bench::{bench_bundle, bench_spec};
use irma_data::{inner_join, read_csv_str, write_csv_string};
use irma_prep::{encode, BinEdges, BinningScheme, FeatureSpec};

fn csv_round_trip(c: &mut Criterion) {
    let bundle = bench_bundle("supercloud", 20_000);
    let text = write_csv_string(&bundle.scheduler);
    let mut group = c.benchmark_group("prep/csv");
    group.sample_size(10);
    group.bench_function("write_20k", |b| {
        b.iter(|| black_box(write_csv_string(&bundle.scheduler)).len())
    });
    group.bench_function("read_20k", |b| {
        b.iter(|| black_box(read_csv_str(&text)).unwrap().n_rows())
    });
    group.finish();
}

fn join_cost(c: &mut Criterion) {
    let bundle = bench_bundle("pai", 40_000);
    let mut group = c.benchmark_group("prep/join");
    group.sample_size(10);
    group.bench_function("inner_join_40k", |b| {
        b.iter(|| {
            black_box(inner_join(&bundle.scheduler, &bundle.monitoring, "job_id"))
                .unwrap()
                .n_rows()
        })
    });
    group.finish();
}

fn binning_schemes(c: &mut Criterion) {
    // Long-tailed runtimes: the distribution where the paper says
    // equal-width fails.
    let bundle = bench_bundle("pai", 40_000);
    let merged = bundle.merged();
    let col = merged.column("runtime_s").expect("runtime column");
    let values: Vec<f64> = (0..merged.n_rows())
        .filter_map(|i| col.numeric(i))
        .collect();
    let mut group = c.benchmark_group("prep/binning");
    for (label, scheme) in [
        ("equal_frequency", BinningScheme::EqualFrequency),
        ("equal_width", BinningScheme::EqualWidth),
    ] {
        group.bench_with_input(BenchmarkId::new(label, values.len()), &scheme, |b, &s| {
            b.iter(|| {
                let edges = BinEdges::fit(&values, 4, s).expect("non-empty");
                let hist = edges.histogram(&values);
                black_box(hist)
            })
        });
    }
    group.finish();
}

fn full_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("prep/encode");
    group.sample_size(10);
    for name in ["pai", "supercloud", "philly"] {
        let bundle = bench_bundle(name, 20_000);
        let merged = bundle.merged();
        let spec = bench_spec(name);
        group.bench_with_input(BenchmarkId::new("encode_20k", name), &merged, |b, m| {
            b.iter(|| black_box(encode(m, &spec)).db.len())
        });
    }
    group.finish();
}

fn encode_equal_width_ablation(c: &mut Criterion) {
    let bundle = bench_bundle("pai", 20_000);
    let merged = bundle.merged();
    let mut group = c.benchmark_group("prep/encode_ablation");
    group.sample_size(10);
    for (label, scheme) in [
        ("equal_frequency", BinningScheme::EqualFrequency),
        ("equal_width", BinningScheme::EqualWidth),
    ] {
        let mut spec = bench_spec("pai");
        for feature in &mut spec.features {
            if let FeatureSpec::Numeric { scheme: s, .. } = feature {
                *s = scheme;
            }
        }
        group.bench_function(label, |b| {
            b.iter(|| black_box(encode(&merged, &spec)).db.total_items())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    csv_round_trip,
    join_cost,
    binning_schemes,
    full_encode,
    encode_equal_width_ablation
);
criterion_main!(benches);
