//! P2: rayon scaling of parallel FP-Growth.
//!
//! The top level of the FP-Growth recursion partitions the header table
//! across workers (each item's conditional subtree is independent). This
//! bench pins rayon pools of 1 / 2 / 4 / all cores and compares against
//! the sequential path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use irma_bench::bench_db;
use irma_mine::{fpgrowth, MinerConfig};

fn thread_sweep(c: &mut Criterion) {
    let db = bench_db(60_000);
    let config = MinerConfig {
        min_support: 0.02,
        max_len: 5,
        parallel: true,
    };
    let mut group = c.benchmark_group("parallel/fpgrowth_threads");
    group.sample_size(10);

    let sequential = MinerConfig {
        parallel: false,
        ..config.clone()
    };
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(fpgrowth(&db, &sequential)).len())
    });

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut sweep: Vec<usize> = [1usize, 2, 4, max_threads]
        .into_iter()
        .filter(|&t| t <= max_threads.max(4))
        .collect();
    sweep.sort_unstable();
    sweep.dedup();
    for threads in sweep {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build rayon pool");
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| pool.install(|| black_box(fpgrowth(&db, &config)).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, thread_sweep);
criterion_main!(benches);
