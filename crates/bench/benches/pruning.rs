//! P4 (§III-D): rule generation and keyword pruning costs.
//!
//! Measures rule generation from the mined lattice, the four-condition
//! pruning pass, and the sensitivity of pruning cost to the C margins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use irma_bench::bench_encoded;
use irma_mine::{fpgrowth, MinerConfig};
use irma_rules::{generate_rules, prune_rules, PruneParams, RuleConfig};

fn rule_generation(c: &mut Criterion) {
    let encoded = bench_encoded("pai", 30_000);
    let frequent = fpgrowth(&encoded.db, &MinerConfig::with_min_support(0.05));
    let mut group = c.benchmark_group("rules/generation");
    group.sample_size(10);
    for &min_lift in &[1.0, 1.5, 2.0] {
        group.bench_with_input(
            BenchmarkId::new("min_lift", min_lift),
            &min_lift,
            |b, &lift| {
                b.iter(|| {
                    black_box(generate_rules(&frequent, &RuleConfig::with_min_lift(lift))).len()
                })
            },
        );
    }
    group.finish();
}

fn keyword_pruning(c: &mut Criterion) {
    let encoded = bench_encoded("pai", 30_000);
    let frequent = fpgrowth(&encoded.db, &MinerConfig::with_min_support(0.05));
    let rules = generate_rules(&frequent, &RuleConfig::with_min_lift(1.5));
    let keyword = encoded.item("SM Util = 0%");
    let mut group = c.benchmark_group("rules/pruning");
    group.sample_size(10);
    for &c_margin in &[1.0, 1.5, 2.0] {
        let params = PruneParams {
            c_lift: c_margin,
            c_supp: c_margin,
        };
        group.bench_with_input(BenchmarkId::new("c_margin", c_margin), &params, |b, p| {
            b.iter(|| black_box(prune_rules(&rules, keyword, p)).kept.len())
        });
    }
    group.finish();
}

criterion_group!(benches, rule_generation, keyword_pruning);
criterion_main!(benches);
