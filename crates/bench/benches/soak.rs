//! Soak target: the three miners under sustained randomized load.
//!
//! Reuses the `irma-check` differential-harness generators — the same
//! strategies the property suites shrink over — but drives them directly
//! through the proptest shim's [`TestRng`] instead of the `proptest!`
//! macro, so this run is a pure timed loop: no corpus replay, no
//! shrinking, no per-case overhead beyond the miners themselves.
//!
//! Each case samples a random database and a random miner config, runs
//! FP-Growth, Apriori, and Eclat on it, and cross-checks that all three
//! report the same number of frequent itemsets (a cheap differential
//! guard — if a soak run ever trips it, feed the seed to the proper
//! property suite for shrinking). Per-algorithm wall time accumulates
//! across cases.
//!
//! Knobs (environment variables):
//!
//! * `SOAK_CASES` — number of random cases (default 200);
//! * `SOAK_SEED`  — base seed, for reproducing a specific run (default
//!   `0x50a4`).

use std::hint::black_box;
use std::time::{Duration, Instant};

use irma_check::generators::{arb_miner_config, arb_transaction_db};
use irma_mine::Algorithm;
use proptest::{Strategy, TestRng};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cases = env_u64("SOAK_CASES", 200) as usize;
    let seed = env_u64("SOAK_SEED", 0x50a4);

    // Slightly larger universe than the oracle-backed property suites use
    // (no 2^items brute-force here), still small enough that Apriori's
    // candidate explosion stays bounded.
    let db_strategy = arb_transaction_db(12, 400);
    let config_strategy = arb_miner_config();

    let mut rng = TestRng::new(seed);
    let mut totals = [Duration::ZERO; 3];
    let mut itemsets_total = 0u64;
    let mut mismatches = 0usize;

    let start = Instant::now();
    for case in 0..cases {
        let db = db_strategy.generate(&mut rng);
        let config = config_strategy.generate(&mut rng);

        let mut counts = [0usize; 3];
        for (slot, algorithm) in Algorithm::all().into_iter().enumerate() {
            let t = Instant::now();
            let frequent = algorithm.mine(&db, &config);
            totals[slot] += t.elapsed();
            counts[slot] = black_box(frequent.len());
        }
        itemsets_total += counts[0] as u64;
        if counts[1] != counts[0] || counts[2] != counts[0] {
            mismatches += 1;
            eprintln!(
                "MISMATCH case {case}: fpgrowth={} apriori={} eclat={} \
                 (seed {seed}, min_support {:.2}, max_len {}, {} txns)",
                counts[0],
                counts[1],
                counts[2],
                config.min_support,
                config.max_len,
                db.len()
            );
        }
    }
    let wall = start.elapsed();

    println!("soak: {cases} randomized cases, seed {seed:#x}");
    for (slot, algorithm) in Algorithm::all().into_iter().enumerate() {
        let total = totals[slot];
        println!(
            "  {:<9} {:8.1} ms total  ({:7.1} µs/case)",
            algorithm.name(),
            total.as_secs_f64() * 1e3,
            total.as_secs_f64() * 1e6 / cases as f64
        );
    }
    println!(
        "  {itemsets_total} frequent itemsets mined, wall {:.1} s",
        wall.as_secs_f64()
    );
    if mismatches > 0 {
        println!("FAIL — {mismatches} differential mismatch(es), see stderr");
        std::process::exit(1);
    }
    println!("PASS — all miners agreed on every case");
}
