//! Tracked HTTP-serving baseline: closed-loop concurrent load against an
//! in-process `irma-serve` server, emitted as machine-readable JSON.
//!
//! Like `mining.rs`, this produces a *committed* baseline —
//! `BENCH_9.json` — that `scripts/check_bench.py` gates CI against. The
//! grid is `clients × mode × path`:
//!
//! * **mode** `healthy` runs with the default execution budget, so every
//!   analysis completes un-degraded; `degraded` caps `max_itemsets` low
//!   enough that every cold analysis walks the degradation ladder and
//!   answers `200` with `degraded:true` — the row measures the cost of
//!   the relax-and-retry rungs plus the fact that degraded results are
//!   never cached.
//! * **path** `cold` gives every request a unique dataset (one extra CSV
//!   row stamped from a global counter) so each one misses the result
//!   cache and mines from scratch; `cache_hit` replays one fixed body
//!   after a single warm-up request, so the server answers from the LRU
//!   (on the degraded server the "hit" path still re-mines every time —
//!   that non-caching penalty is exactly what the cell documents).
//!
//! Each client is closed-loop (next request only after the previous
//! response), so `rps` reflects end-to-end latency, not an open-loop
//! arrival fantasy. Correctness is host-independent: every request in a
//! measured cell must come back `200` (`ok == requests`); throughput and
//! p95 latency are compared same-host only, like mining wall times.
//!
//! Knobs (all environment variables):
//!
//! * `IRMA_SERVE_CLIENTS`  — comma-separated client counts (default `1,2,4`);
//! * `IRMA_SERVE_REQUESTS` — requests per client per cell (default `12`);
//! * `IRMA_SERVE_OUT`      — output path (default `BENCH_9.json`);
//! * `IRMA_SERVE_DEGRADED_CAP` — itemset cap for the degraded server
//!   (default `0` = auto: a quarter of the healthy probe's count).
//!
//! On a 1-core host the multi-client cells are declared-skipped: a
//! closed-loop concurrency measurement needs real parallelism to mean
//! anything, and a silent absence is indistinguishable from a forgotten
//! cell.
//!
//! Run with `cargo bench -p irma-bench --bench serve`.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use irma_obs::Metrics;
use irma_serve::{AdmissionConfig, ServeConfig, Server};

const MODES: &[&str] = &["healthy", "degraded"];
const PATHS: &[&str] = &["cold", "cache_hit"];
const QUERY: &str = "?min_support=0.1&top=5";

/// Stamps unique trailing rows onto cold-path bodies; global so bodies
/// stay unique across cells, paths, and reps.
static UNIQUE: AtomicUsize = AtomicUsize::new(0);

struct Measurement {
    clients: usize,
    mode: &'static str,
    path: &'static str,
    reps: u32,
    requests: usize,
    ok: usize,
    best_wall_s: f64,
    rps: f64,
    p95_ms: f64,
    skipped: Option<String>,
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(raw) => raw
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name}: bad entry `{tok}`"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|raw| raw.parse().unwrap_or_else(|_| panic!("{name}: bad value")))
        .unwrap_or(default)
}

/// The shared base dataset: a deterministic 96-row GPU-job table whose
/// three columns give the miner a non-trivial but sub-second workload.
fn base_csv() -> String {
    let mut csv = String::from("gpu_util,mem_util,state\n");
    for i in 0..96usize {
        let (util, mem, state) = if i % 3 == 0 {
            (0, (i * 5) % 20, "Failed")
        } else {
            (85 + (i % 13), 40 + (i * 7) % 50, "Succeeded")
        };
        let _ = writeln!(csv, "{util},{mem},{state}");
    }
    csv
}

/// One raw HTTP exchange; the server closes after each response, so a
/// read-to-end is a full response.
fn post(addr: SocketAddr, tenant: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let request = format!(
        "POST /v1/analyze{QUERY} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\
         x-irma-tenant: {tenant}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read response (raise the timeout if mining is this slow)");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, response)
}

fn json_u64_field(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let digits: String = body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn start_server(workers: usize, budget_cap: Option<u64>) -> Server {
    let config = ServeConfig {
        workers,
        queue_depth: 64,
        cache_entries: 512,
        // The bench measures the pipeline, not the rate limiter: a bucket
        // this deep never sheds closed-loop traffic.
        admission: AdmissionConfig {
            rate_per_sec: 1.0e6,
            burst: 1.0e6,
            ..AdmissionConfig::default()
        },
        default_budget: irma_core::ExecBudget {
            max_itemsets: budget_cap,
            ..irma_core::ExecBudget::default()
        },
        ..ServeConfig::default()
    };
    Server::start("127.0.0.1:0", config, Metrics::enabled()).expect("bind bench server")
}

/// One timed pass of a cell: `clients` closed-loop threads, `requests`
/// each. Returns (wall seconds, 200-count, all latencies in ms).
fn run_pass(
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    path: &str,
    base: &str,
) -> (f64, usize, Vec<f64>) {
    let barrier = Barrier::new(clients + 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let tenant = format!("bench-{c}");
                    let mut ok = 0usize;
                    let mut latencies = Vec::with_capacity(requests);
                    barrier.wait();
                    for _ in 0..requests {
                        let body = if path == "cold" {
                            let k = UNIQUE.fetch_add(1, Ordering::Relaxed);
                            format!("{base}{},{},Succeeded\n", k % 100, (k * 7) % 100)
                        } else {
                            base.to_string()
                        };
                        let t0 = Instant::now();
                        let (status, _) = post(addr, &tenant, &body);
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        if status == 200 {
                            ok += 1;
                        }
                    }
                    (ok, latencies)
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        let mut ok = 0;
        let mut latencies = Vec::with_capacity(clients * requests);
        for handle in handles {
            let (n, mut lats) = handle.join().expect("client thread");
            ok += n;
            latencies.append(&mut lats);
        }
        (t0.elapsed().as_secs_f64(), ok, latencies)
    })
}

fn p95(latencies: &mut [f64]) -> f64 {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    if latencies.is_empty() {
        return 0.0;
    }
    let rank = ((latencies.len() as f64) * 0.95).ceil() as usize;
    latencies[rank.saturating_sub(1).min(latencies.len() - 1)]
}

fn reps_for(first_wall: f64) -> u32 {
    if first_wall < 0.5 {
        5
    } else if first_wall < 2.0 {
        3
    } else {
        2
    }
}

fn measure(
    addr: SocketAddr,
    clients: usize,
    mode: &'static str,
    path: &'static str,
    requests: usize,
    base: &str,
) -> Measurement {
    // Warm the cache-hit path once so the first timed request already
    // hits (on the degraded server this merely primes nothing, by
    // design — degraded results are not cached).
    if path == "cache_hit" {
        let (status, response) = post(addr, "bench-warm", base);
        assert_eq!(status, 200, "cache warm-up failed: {response}");
    }
    let (first_wall, first_ok, mut first_lats) = run_pass(addr, clients, requests, path, base);
    let total = clients * requests;
    assert_eq!(
        first_ok, total,
        "{mode}/{path} @ {clients} client(s): {first_ok}/{total} requests returned 200"
    );
    let reps = reps_for(first_wall);
    let mut best_wall = first_wall;
    let mut best_p95 = p95(&mut first_lats);
    for _ in 1..reps {
        let (wall, ok, mut lats) = run_pass(addr, clients, requests, path, base);
        assert_eq!(ok, total, "{mode}/{path} @ {clients}: rep lost requests");
        if wall < best_wall {
            best_wall = wall;
            best_p95 = p95(&mut lats);
        }
    }
    Measurement {
        clients,
        mode,
        path,
        reps,
        requests: total,
        ok: total,
        best_wall_s: best_wall,
        rps: total as f64 / best_wall,
        p95_ms: best_p95,
        skipped: None,
    }
}

fn render_json(
    clients: &[usize],
    requests: usize,
    degraded_cap: u64,
    host_cores: usize,
    rows: &[Measurement],
) -> String {
    let list = |xs: &[usize]| {
        xs.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let names = |xs: &[&str]| {
        xs.iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"irma-bench/serve/v1\",\n");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(out, "  \"requests_per_client\": {requests},");
    let _ = writeln!(out, "  \"degraded_cap\": {degraded_cap},");
    let _ = writeln!(out, "  \"clients\": [{}],", list(clients));
    let _ = writeln!(out, "  \"modes\": [{}],", names(MODES));
    let _ = writeln!(out, "  \"paths\": [{}],", names(PATHS));
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        if let Some(reason) = &row.skipped {
            let _ = write!(
                out,
                "    {{ \"clients\": {}, \"mode\": \"{}\", \"path\": \"{}\", \
                 \"skipped\": \"{}\" }}",
                row.clients, row.mode, row.path, reason,
            );
        } else {
            let _ = write!(
                out,
                "    {{ \"clients\": {}, \"mode\": \"{}\", \"path\": \"{}\", \
                 \"reps\": {}, \"requests\": {}, \"ok\": {}, \
                 \"best_wall_s\": {:.6}, \"rps\": {:.1}, \"p95_ms\": {:.3} }}",
                row.clients,
                row.mode,
                row.path,
                row.reps,
                row.requests,
                row.ok,
                row.best_wall_s,
                row.rps,
                row.p95_ms,
            );
        }
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let clients = env_list("IRMA_SERVE_CLIENTS", &[1, 2, 4]);
    let requests = env_usize("IRMA_SERVE_REQUESTS", 12);
    let cap_override = env_usize("IRMA_SERVE_DEGRADED_CAP", 0) as u64;
    let out_path = std::env::var("IRMA_SERVE_OUT").unwrap_or_else(|_| "BENCH_9.json".to_string());
    let out_path = if std::path::Path::new(&out_path).is_absolute() {
        std::path::PathBuf::from(out_path)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(out_path)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_clients = clients.iter().copied().max().unwrap_or(1).max(2);
    let base = base_csv();

    let healthy = start_server(max_clients, None);
    // Probe the healthy server once: asserts the workload mines clean and
    // yields the itemset count the degraded cap is derived from.
    let (status, response) = post(healthy.local_addr(), "bench-probe", &base);
    assert_eq!(status, 200, "healthy probe failed: {response}");
    assert!(
        response.contains("\"degraded\":false"),
        "healthy probe unexpectedly degraded: {response}"
    );
    let itemsets = json_u64_field(&response, "frequent_itemsets")
        .expect("healthy probe response lacks frequent_itemsets");
    let degraded_cap = if cap_override > 0 {
        cap_override
    } else {
        (itemsets / 4).max(2)
    };
    eprintln!("healthy probe: {itemsets} itemsets; degraded cap {degraded_cap}");

    let degraded = start_server(max_clients, Some(degraded_cap));
    let (status, response) = post(degraded.local_addr(), "bench-probe", &base);
    assert_eq!(
        status, 200,
        "degraded probe failed (the ladder exhausted? raise IRMA_SERVE_DEGRADED_CAP): {response}"
    );
    assert!(
        response.contains("\"degraded\":true"),
        "cap {degraded_cap} did not trip the ladder; lower IRMA_SERVE_DEGRADED_CAP: {response}"
    );

    let mut rows = Vec::new();
    for &n in &clients {
        for &mode in MODES {
            let addr = if mode == "healthy" {
                healthy.local_addr()
            } else {
                degraded.local_addr()
            };
            for &path in PATHS {
                if host_cores == 1 && n > 1 {
                    let reason = format!(
                        "host reports 1 core; {n}-client closed-loop concurrency \
                         cannot be demonstrated here"
                    );
                    eprintln!("  skipping {mode}/{path} @ {n} client(s): {reason}");
                    rows.push(Measurement {
                        clients: n,
                        mode,
                        path,
                        reps: 0,
                        requests: 0,
                        ok: 0,
                        best_wall_s: 0.0,
                        rps: 0.0,
                        p95_ms: 0.0,
                        skipped: Some(reason),
                    });
                    continue;
                }
                let row = measure(addr, n, mode, path, requests, &base);
                eprintln!(
                    "  {n} client(s) | {mode:<8} | {path:<9}: {:>8.1} req/s, \
                     p95 {:>7.3} ms (best of {})",
                    row.rps, row.p95_ms, row.reps
                );
                rows.push(row);
            }
        }
    }

    healthy.shutdown();
    degraded.shutdown();

    let json = render_json(&clients, requests, degraded_cap, host_cores, &rows);
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    eprintln!("wrote {}", out_path.display());
}
