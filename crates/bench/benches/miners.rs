//! P1 (§III-C): FP-Growth vs Apriori vs Eclat.
//!
//! The paper adopts FP-Growth because Apriori's candidate generation has
//! "exponential runtime and memory requirements when the database is
//! large". This bench sweeps the support threshold and the database size
//! on the encoded PAI workload; the expected shape is FP-Growth ~flat in
//! support with Apriori degrading sharply as support drops (more and
//! longer candidates), with the crossover visible at high support where
//! Apriori's simple counting wins on tiny candidate sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use irma_bench::bench_db;
use irma_mine::{apriori, eclat, fpgrowth, MinerConfig};

fn support_sweep(c: &mut Criterion) {
    let db = bench_db(30_000);
    let mut group = c.benchmark_group("miners/support_sweep");
    group.sample_size(10);
    for &min_support in &[0.3, 0.15, 0.05, 0.02] {
        let config = MinerConfig {
            min_support,
            max_len: 5,
            parallel: false,
        };
        group.bench_with_input(
            BenchmarkId::new("fpgrowth", min_support),
            &config,
            |b, cfg| b.iter(|| black_box(fpgrowth(&db, cfg)).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("apriori", min_support),
            &config,
            |b, cfg| b.iter(|| black_box(apriori(&db, cfg)).len()),
        );
        group.bench_with_input(BenchmarkId::new("eclat", min_support), &config, |b, cfg| {
            b.iter(|| black_box(eclat(&db, cfg)).len())
        });
    }
    group.finish();
}

fn size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("miners/size_sweep");
    group.sample_size(10);
    for &n_jobs in &[5_000usize, 20_000, 60_000] {
        let db = bench_db(n_jobs);
        let config = MinerConfig {
            min_support: 0.05,
            max_len: 5,
            parallel: false,
        };
        group.bench_with_input(BenchmarkId::new("fpgrowth", n_jobs), &db, |b, db| {
            b.iter(|| black_box(fpgrowth(db, &config)).len())
        });
        group.bench_with_input(BenchmarkId::new("apriori", n_jobs), &db, |b, db| {
            b.iter(|| black_box(apriori(db, &config)).len())
        });
        group.bench_with_input(BenchmarkId::new("eclat", n_jobs), &db, |b, db| {
            b.iter(|| black_box(eclat(db, &config)).len())
        });
    }
    group.finish();
}

fn max_len_sweep(c: &mut Criterion) {
    // The paper caps itemsets at length 5 (§III-D); this shows what the
    // cap buys.
    let db = bench_db(30_000);
    let mut group = c.benchmark_group("miners/max_len_sweep");
    group.sample_size(10);
    for &max_len in &[2usize, 3, 5, 8] {
        let config = MinerConfig {
            min_support: 0.05,
            max_len,
            parallel: false,
        };
        group.bench_with_input(BenchmarkId::new("fpgrowth", max_len), &config, |b, cfg| {
            b.iter(|| black_box(fpgrowth(&db, cfg)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, support_sweep, size_sweep, max_len_sweep);
criterion_main!(benches);
