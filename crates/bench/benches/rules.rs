//! Tracked rules-stage baseline: keyword pruning wall time for the
//! trie-driven implementation vs the flat all-pairs oracle, per
//! (scale × impl × pool width), emitted as machine-readable JSON.
//!
//! Like `mining.rs` (schema v2), this produces the *committed* baseline
//! `BENCH_10.json` that `scripts/check_bench.py` gates CI against under
//! the `irma-bench/rules/v1` schema: kept/pruned counts must match
//! exactly (machine-independent correctness — the synthetic rule set is
//! a deterministic function of scale), wall times within a tolerance on
//! same-core-count hosts, and the trie must beat the flat path by the
//! speedup floor *within the same document* (both cells measured on one
//! host, so the gate is machine-independent too).
//!
//! Knobs (all environment variables):
//!
//! * `IRMA_BENCH_RULES_SCALES`   — comma-separated rule counts
//!   (default `10000,100000,500000`);
//! * `IRMA_BENCH_RULES_THREADS`  — comma-separated pool widths
//!   (default `1,4`; only the trie path parallelizes);
//! * `IRMA_BENCH_RULES_OUT`      — output path (default `BENCH_10.json`);
//! * `IRMA_BENCH_RULES_FLAT_CAP` — largest scale the flat oracle runs at
//!   (default `100000`): all-pairs at 500k rules is the quadratic blowup
//!   this PR removes, so those reps are declared-skipped, not burned.
//!
//! Run with `cargo bench -p irma-bench --bench rules`.

use std::fmt::Write as _;
use std::time::Instant;

use irma_bench::{bench_rules, BENCH_RULES_KEYWORD, BENCH_SEED};
use irma_check::flat_prune::flat_prune_rules;
use irma_obs::{Metrics, Provenance};
use irma_rules::{prune_rules_traced, PruneParams, Rule};

struct Measurement {
    scale: usize,
    implementation: &'static str,
    threads: usize,
    reps: u32,
    best_wall_s: f64,
    kept: u64,
    pruned: u64,
    /// `Some(reason)` marks a declared-skipped cell; the measurement
    /// fields are meaningless and the JSON row carries only the reason.
    skipped: Option<String>,
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(raw) => raw
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name}: bad entry `{tok}`"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|raw| raw.parse().unwrap_or_else(|_| panic!("{name}: bad value")))
        .unwrap_or(default)
}

/// Reps scale inversely with run length so cheap configs get tight
/// minima and expensive ones stay tractable; the min discards warmup.
fn reps_for(first_run: f64) -> u32 {
    if first_run < 0.05 {
        15
    } else if first_run < 0.5 {
        7
    } else if first_run < 5.0 {
        3
    } else {
        2
    }
}

fn measure(rules: &[Rule], implementation: &'static str, threads: usize) -> (f64, u64, u64, u32) {
    let params = PruneParams::default();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build pool");
    let time_one = || {
        let t0 = Instant::now();
        let outcome = match implementation {
            "flat" => {
                flat_prune_rules(rules, BENCH_RULES_KEYWORD, &params, &Provenance::disabled())
            }
            "trie" => pool.install(|| {
                prune_rules_traced(
                    rules,
                    BENCH_RULES_KEYWORD,
                    &params,
                    &Metrics::disabled(),
                    &Provenance::disabled(),
                )
            }),
            other => panic!("unknown impl `{other}`"),
        };
        (
            t0.elapsed().as_secs_f64(),
            outcome.kept.len() as u64,
            outcome.pruned.len() as u64,
        )
    };
    let (first, kept, pruned) = time_one();
    let reps = reps_for(first);
    let mut best = first;
    for _ in 1..reps {
        let (wall, k, p) = time_one();
        assert_eq!((k, p), (kept, pruned), "nondeterministic prune outcome");
        best = best.min(wall);
    }
    (best, kept, pruned, reps)
}

fn render_json(
    scales: &[usize],
    threads: &[usize],
    host_cores: usize,
    rows: &[Measurement],
) -> String {
    let list = |xs: &[usize]| {
        xs.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"irma-bench/rules/v1\",\n");
    let _ = writeln!(out, "  \"seed\": {BENCH_SEED},");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(out, "  \"keyword\": {BENCH_RULES_KEYWORD},");
    out.push_str("  \"prune_params\": { \"c_lift\": 1.5, \"c_supp\": 1.5 },\n");
    let _ = writeln!(out, "  \"scales\": [{}],", list(scales));
    out.push_str("  \"impls\": [\"flat\", \"trie\"],\n");
    let _ = writeln!(out, "  \"threads\": [{}],", list(threads));
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        if let Some(reason) = &row.skipped {
            let _ = write!(
                out,
                "    {{ \"scale\": {}, \"impl\": \"{}\", \"threads\": {}, \
                 \"skipped\": \"{}\" }}",
                row.scale, row.implementation, row.threads, reason,
            );
        } else {
            let rules_per_s = row.scale as f64 / row.best_wall_s;
            // Trie speedup vs this scale's 1-thread flat best, when
            // measured: the within-document number the checker's floor
            // gates on.
            let speedup_vs_flat = if row.implementation == "trie" {
                rows.iter()
                    .find(|r| {
                        r.scale == row.scale
                            && r.implementation == "flat"
                            && r.threads == 1
                            && r.skipped.is_none()
                    })
                    .map(|base| base.best_wall_s / row.best_wall_s)
            } else {
                None
            };
            let _ = write!(
                out,
                "    {{ \"scale\": {}, \"impl\": \"{}\", \"threads\": {}, \
                 \"reps\": {}, \"best_wall_s\": {:.6}, \"kept\": {}, \"pruned\": {}, \
                 \"rules_per_s\": {:.1}, \"speedup_vs_flat\": {} }}",
                row.scale,
                row.implementation,
                row.threads,
                row.reps,
                row.best_wall_s,
                row.kept,
                row.pruned,
                rules_per_s,
                speedup_vs_flat.map_or("null".to_string(), |s| format!("{s:.3}")),
            );
        }
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let scales = env_list("IRMA_BENCH_RULES_SCALES", &[10_000, 100_000, 500_000]);
    let threads = env_list("IRMA_BENCH_RULES_THREADS", &[1, 4]);
    let flat_cap = env_usize("IRMA_BENCH_RULES_FLAT_CAP", 100_000);
    let out_path =
        std::env::var("IRMA_BENCH_RULES_OUT").unwrap_or_else(|_| "BENCH_10.json".to_string());
    // Cargo runs bench binaries with CWD = the package dir; anchor
    // relative outputs at the workspace root where the committed
    // baseline (and CI's gate step) expect them.
    let out_path = if std::path::Path::new(&out_path).is_absolute() {
        std::path::PathBuf::from(out_path)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(out_path)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut rows = Vec::new();
    for &scale in &scales {
        eprintln!("generating synthetic rule set at {scale} rules...");
        let rules = bench_rules(scale);
        for implementation in ["flat", "trie"] {
            for &width in &threads {
                let skip_reason = if implementation == "flat" && width != 1 {
                    Some("flat path is single-threaded".to_string())
                } else if implementation == "flat" && scale > flat_cap {
                    Some(format!(
                        "scale {scale} exceeds IRMA_BENCH_RULES_FLAT_CAP {flat_cap} \
                         (all-pairs baseline; the quadratic blowup is this PR's point)"
                    ))
                } else {
                    None
                };
                if let Some(reason) = skip_reason {
                    eprintln!("  skipping {implementation} at {scale}x{width}: {reason}");
                    rows.push(Measurement {
                        scale,
                        implementation,
                        threads: width,
                        reps: 0,
                        best_wall_s: 0.0,
                        kept: 0,
                        pruned: 0,
                        skipped: Some(reason),
                    });
                    continue;
                }
                let (best, kept, pruned, reps) = measure(&rules, implementation, width);
                eprintln!(
                    "  {:>8} rules | {:<4} | {} thread(s): {:>10.4}s  \
                     ({} kept, {} pruned, best of {})",
                    scale, implementation, width, best, kept, pruned, reps
                );
                rows.push(Measurement {
                    scale,
                    implementation,
                    threads: width,
                    reps,
                    best_wall_s: best,
                    kept,
                    pruned,
                    skipped: None,
                });
            }
        }
    }

    let json = render_json(&scales, &threads, host_cores, &rows);
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    eprintln!("wrote {}", out_path.display());
}
