//! Regenerates every table and figure of the paper in one run.
//!
//! ```text
//! cargo run -p irma-bench --bin experiments --release [-- [pai_jobs] [sc_jobs] [philly_jobs] [seed]]
//! ```
//!
//! Defaults to a scale that keeps the full run under a minute in release
//! mode while preserving the paper's relative trace sizes (PAI ~8.5x the
//! others). Output sections follow the paper's order; EXPERIMENTS.md
//! records the paper-vs-measured comparison for each artifact.

use std::time::Instant;

use irma_core::experiments::run_all;
use irma_core::{prepare_all, AnalysisConfig, ExperimentScale};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let mut scale = ExperimentScale::default();
    if let Some(&n) = args.first() {
        scale.pai_jobs = n;
    }
    if let Some(&n) = args.get(1) {
        scale.supercloud_jobs = n;
    }
    if let Some(&n) = args.get(2) {
        scale.philly_jobs = n;
    }
    if let Some(&s) = args.get(3) {
        scale.seed = s as u64;
    }

    eprintln!(
        "generating traces: pai={} supercloud={} philly={} (seed {:#x})",
        scale.pai_jobs, scale.supercloud_jobs, scale.philly_jobs, scale.seed
    );
    let t0 = Instant::now();
    let traces = prepare_all(&scale, &AnalysisConfig::default());
    eprintln!("prepared in {:.1}s", t0.elapsed().as_secs_f64());
    for t in &traces {
        eprintln!(
            "  {}: {} jobs, {} items, {} frequent itemsets, {} rules",
            t.name,
            t.analysis.n_jobs(),
            t.analysis.encoded.catalog.len(),
            t.analysis.frequent.len(),
            t.analysis.rules.len()
        );
    }
    let t1 = Instant::now();
    println!("{}", run_all(&traces));
    eprintln!("experiments rendered in {:.1}s", t1.elapsed().as_secs_f64());
}
