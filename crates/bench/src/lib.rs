//! # irma-bench — benchmark harness
//!
//! Criterion benches (`benches/`) cover the paper's performance claims
//! (P1: FP-Growth vs Apriori vs Eclat, P2: parallel scaling) and per-stage
//! costs (preprocessing, pruning), plus one bench per paper table/figure
//! (`paper_artifacts`). The `experiments` binary
//! (`cargo run -p irma-bench --bin experiments --release`) regenerates the
//! rendered tables and figures themselves.
//!
//! Shared fixtures live here so every bench measures the same workloads.

use irma_core::{pai_spec, philly_spec, supercloud_spec};
use irma_mine::{ItemId, Itemset, TransactionDb};
use irma_prep::{encode, Encoded, EncoderSpec};
use irma_rules::Rule;
use irma_synth::{pai, philly, supercloud, TraceBundle, TraceConfig};

/// Deterministic seed shared by all benches.
pub const BENCH_SEED: u64 = 0xbe7c;

/// Generates a trace bundle for benching (monitor samples capped low; the
/// reductions are statistically converged well before the cap).
pub fn bench_bundle(name: &str, n_jobs: usize) -> TraceBundle {
    let config = TraceConfig {
        n_jobs,
        seed: BENCH_SEED,
        max_monitor_samples: 64,
    };
    match name {
        "pai" => pai(&config),
        "supercloud" => supercloud(&config),
        "philly" => philly(&config),
        other => panic!("unknown trace `{other}`"),
    }
}

/// The encoder spec for a trace name.
pub fn bench_spec(name: &str) -> EncoderSpec {
    match name {
        "pai" => pai_spec(),
        "supercloud" => supercloud_spec(),
        "philly" => philly_spec(),
        other => panic!("unknown trace `{other}`"),
    }
}

/// Generates and encodes a trace in one step.
pub fn bench_encoded(name: &str, n_jobs: usize) -> Encoded {
    let bundle = bench_bundle(name, n_jobs);
    encode(&bundle.merged(), &bench_spec(name))
}

/// The encoded PAI transaction database (the paper's largest workload).
pub fn bench_db(n_jobs: usize) -> TransactionDb {
    bench_encoded("pai", n_jobs).db
}

/// The analysis keyword every synthetic [`bench_rules`] rule involves.
pub const BENCH_RULES_KEYWORD: ItemId = 0;

/// SplitMix64 — the same tiny deterministic generator the synth crate
/// seeds from, inlined so rule-set generation has zero dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic synthetic rule set for the rules-stage benchmark
/// (`benches/rules.rs`), shaped to stress exactly what the pruning stage
/// iterates over:
///
/// * ~75% *cause* rules — consequent is `{K}` or `{K, ctx}` over 8
///   context items, so conditions 1/4 see 9 large equal-consequent
///   groups (what the flat path pairs quadratically);
/// * ~25% *characteristic* rules — the mirror image for conditions 2/3;
/// * varying sides are **family-structured**: each rule draws its
///   antecedent (cause) or consequent (characteristic) from one of
///   `n / 256` disjoint 12-item blocks, a shared base item plus up to 3
///   extensions — so proper nesting is dense *within* a family and
///   impossible across families, the regime where trie walks stay
///   localized while all-pairs comparison does not.
///
/// Metrics are quantized draws, so kept/pruned counts are exact,
/// machine-independent constants the benchmark schema can gate on.
pub fn bench_rules(n: usize) -> Vec<Rule> {
    const KEYWORD: ItemId = BENCH_RULES_KEYWORD;
    const N_CTX: u64 = 8; // context items 1..=8
    const FIRST_BLOCK: u32 = 9;
    const BLOCK: u32 = 12; // base item + 11 extension slots
    let families = (n / 256).max(1) as u64;
    let mut state = BENCH_SEED ^ (n as u64).wrapping_mul(0x5851_f42d_4c95_7f2d);
    let mut rules = Vec::with_capacity(n);
    for _ in 0..n {
        let draw = splitmix64(&mut state);
        let base = FIRST_BLOCK + (splitmix64(&mut state) % families) as u32 * BLOCK;
        let mut varying: Vec<ItemId> = vec![base];
        for _ in 0..(draw % 4) {
            varying.push(base + 1 + (splitmix64(&mut state) % 11) as u32);
        }
        varying.sort_unstable();
        varying.dedup();
        let shared: Vec<ItemId> = match (draw >> 8) % (N_CTX + 1) {
            0 => vec![KEYWORD],
            ctx => vec![KEYWORD, ctx as u32],
        };
        let (antecedent, consequent) = if (draw >> 16).is_multiple_of(4) {
            // Characteristic rule: keyword on the antecedent side.
            (shared, varying)
        } else {
            // Cause rule: keyword on the consequent side.
            (varying, shared)
        };
        let support = 0.05 + ((draw >> 24) % 1000) as f64 / 2000.0;
        let lift = 1.0 + ((draw >> 40) % 640) as f64 / 64.0;
        rules.push(Rule {
            antecedent: Itemset::from_items(antecedent),
            consequent: Itemset::from_items(consequent),
            support_count: (support * 1_000_000.0) as u64,
            support,
            confidence: 0.5,
            lift,
        });
    }
    rules
}
