//! # irma-bench — benchmark harness
//!
//! Criterion benches (`benches/`) cover the paper's performance claims
//! (P1: FP-Growth vs Apriori vs Eclat, P2: parallel scaling) and per-stage
//! costs (preprocessing, pruning), plus one bench per paper table/figure
//! (`paper_artifacts`). The `experiments` binary
//! (`cargo run -p irma-bench --bin experiments --release`) regenerates the
//! rendered tables and figures themselves.
//!
//! Shared fixtures live here so every bench measures the same workloads.

use irma_core::{pai_spec, philly_spec, supercloud_spec};
use irma_mine::TransactionDb;
use irma_prep::{encode, Encoded, EncoderSpec};
use irma_synth::{pai, philly, supercloud, TraceBundle, TraceConfig};

/// Deterministic seed shared by all benches.
pub const BENCH_SEED: u64 = 0xbe7c;

/// Generates a trace bundle for benching (monitor samples capped low; the
/// reductions are statistically converged well before the cap).
pub fn bench_bundle(name: &str, n_jobs: usize) -> TraceBundle {
    let config = TraceConfig {
        n_jobs,
        seed: BENCH_SEED,
        max_monitor_samples: 64,
    };
    match name {
        "pai" => pai(&config),
        "supercloud" => supercloud(&config),
        "philly" => philly(&config),
        other => panic!("unknown trace `{other}`"),
    }
}

/// The encoder spec for a trace name.
pub fn bench_spec(name: &str) -> EncoderSpec {
    match name {
        "pai" => pai_spec(),
        "supercloud" => supercloud_spec(),
        "philly" => philly_spec(),
        other => panic!("unknown trace `{other}`"),
    }
}

/// Generates and encodes a trace in one step.
pub fn bench_encoded(name: &str, n_jobs: usize) -> Encoded {
    let bundle = bench_bundle(name, n_jobs);
    encode(&bundle.merged(), &bench_spec(name))
}

/// The encoded PAI transaction database (the paper's largest workload).
pub fn bench_db(n_jobs: usize) -> TransactionDb {
    bench_encoded("pai", n_jobs).db
}
