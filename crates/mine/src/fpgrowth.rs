//! FP-Growth frequent-itemset mining (Han et al., DMKD 2004).
//!
//! The paper adopts FP-Growth over Apriori because the traces are large
//! (850k jobs for PAI) and Apriori's candidate generation blows up at 5%
//! support (§III-C). This implementation is hand-rolled:
//!
//! * the FP-tree lives in a flat arena (`Vec<FpNode>`) — no `Rc`/`RefCell`
//!   pointer chasing, no per-node allocation;
//! * header "linked lists" are per-item vectors of node indices;
//! * conditional trees are built from weighted prefix paths, re-ranked by
//!   conditional frequency;
//! * single-prefix-path subtrees short-circuit into direct subset
//!   enumeration;
//! * the top level of the recursion optionally fans out across rayon
//!   workers (the conditional subtrees are independent).

use std::panic::AssertUnwindSafe;

use irma_obs::Metrics;
use rayon::prelude::*;

use crate::budget::{BudgetBreach, BudgetGuard, MineError};
use crate::counts::{FrequentItemsets, MinerConfig};
use crate::db::TransactionDb;
use crate::item::{ItemId, Itemset};

/// Sentinel rank used for the root node.
const NO_ITEM: u32 = u32::MAX;

/// One FP-tree node.
#[derive(Debug, Clone)]
struct FpNode {
    /// Rank (frequency-order index) of the item at this node.
    rank: u32,
    /// Accumulated path count.
    count: u64,
    /// Arena index of the parent (root's parent is itself).
    parent: u32,
    /// Children as `(rank, node)` pairs, sorted by rank for binary search.
    children: Vec<(u32, u32)>,
}

/// An FP-tree over an item universe restricted to frequent items.
#[derive(Debug)]
struct FpTree {
    nodes: Vec<FpNode>,
    /// Per-rank list of node indices holding that item.
    headers: Vec<Vec<u32>>,
    /// Per-rank total support count.
    rank_counts: Vec<u64>,
    /// Rank -> global item id.
    rank_to_item: Vec<ItemId>,
}

impl FpTree {
    /// Builds a tree from weighted paths of *global* item ids.
    ///
    /// Items below `min_count` are dropped; survivors are ranked by
    /// descending count (ascending id tie-break, so results are
    /// deterministic regardless of thread scheduling).
    ///
    /// The input is drained exactly once: paths are materialized as
    /// borrowed slices (pointer + length + weight each), then walked for
    /// the counting and insertion phases. This keeps one-shot iterators
    /// usable and avoids re-running whatever computation feeds `paths`.
    fn build<'a, I>(paths: I, n_items: usize, min_count: u64) -> FpTree
    where
        I: IntoIterator<Item = (&'a [ItemId], u64)>,
    {
        let paths: Vec<(&'a [ItemId], u64)> = paths.into_iter().collect();
        let mut counts = vec![0u64; n_items];
        for &(path, weight) in &paths {
            for &item in path {
                counts[item as usize] += weight;
            }
        }
        let mut frequent: Vec<ItemId> = (0..n_items as ItemId)
            .filter(|&i| counts[i as usize] >= min_count)
            .collect();
        frequent.sort_unstable_by(|&a, &b| {
            counts[b as usize]
                .cmp(&counts[a as usize])
                .then_with(|| a.cmp(&b))
        });
        let mut item_to_rank = vec![NO_ITEM; n_items];
        for (rank, &item) in frequent.iter().enumerate() {
            item_to_rank[item as usize] = rank as u32;
        }
        let rank_counts: Vec<u64> = frequent.iter().map(|&i| counts[i as usize]).collect();

        let mut tree = FpTree {
            nodes: vec![FpNode {
                rank: NO_ITEM,
                count: 0,
                parent: 0,
                children: Vec::new(),
            }],
            headers: vec![Vec::new(); frequent.len()],
            rank_counts,
            rank_to_item: frequent,
        };

        let mut ranked: Vec<u32> = Vec::new();
        for &(path, weight) in &paths {
            ranked.clear();
            ranked.extend(
                path.iter()
                    .map(|&i| item_to_rank[i as usize])
                    .filter(|&r| r != NO_ITEM),
            );
            ranked.sort_unstable();
            tree.insert(&ranked, weight);
        }
        tree
    }

    /// Inserts one ranked path with a weight.
    fn insert(&mut self, ranked: &[u32], weight: u64) {
        let mut node = 0u32;
        for &rank in ranked {
            let pos = self.nodes[node as usize]
                .children
                .binary_search_by_key(&rank, |&(r, _)| r);
            node = match pos {
                Ok(i) => {
                    let child = self.nodes[node as usize].children[i].1;
                    self.nodes[child as usize].count += weight;
                    child
                }
                Err(i) => {
                    let child = self.nodes.len() as u32;
                    self.nodes.push(FpNode {
                        rank,
                        count: weight,
                        parent: node,
                        children: Vec::new(),
                    });
                    self.nodes[node as usize].children.insert(i, (rank, child));
                    self.headers[rank as usize].push(child);
                    child
                }
            };
        }
    }

    /// Number of distinct frequent items in this tree.
    fn n_ranks(&self) -> usize {
        self.rank_to_item.len()
    }

    /// If the whole tree is one downward path, returns `(item, count)`
    /// pairs along it (root excluded).
    fn single_path(&self) -> Option<Vec<(ItemId, u64)>> {
        let mut path = Vec::new();
        let mut node = 0usize;
        loop {
            match self.nodes[node].children.len() {
                0 => return Some(path),
                1 => {
                    node = self.nodes[node].children[0].1 as usize;
                    let n = &self.nodes[node];
                    path.push((self.rank_to_item[n.rank as usize], n.count));
                }
                _ => return None,
            }
        }
    }

    /// Estimated arena footprint: nodes, per-node child slots, headers,
    /// and the rank tables. An upper bound on what `build` allocated,
    /// charged against [`BudgetGuard::charge_tree_bytes`].
    fn estimated_bytes(&self) -> u64 {
        let node = std::mem::size_of::<FpNode>() as u64;
        let child_slot = std::mem::size_of::<(u32, u32)>() as u64;
        let nodes = self.nodes.len() as u64;
        // Every non-root node occupies exactly one child slot and one
        // header slot.
        nodes * node + nodes.saturating_sub(1) * (child_slot + 4) + self.n_ranks() as u64 * 12
    }

    /// The conditional pattern base of `rank`: weighted prefix paths of
    /// global item ids (unsorted; `build` re-ranks anyway).
    fn pattern_base(&self, rank: u32) -> Vec<(Vec<ItemId>, u64)> {
        let mut base = Vec::with_capacity(self.headers[rank as usize].len());
        for &leaf in &self.headers[rank as usize] {
            let weight = self.nodes[leaf as usize].count;
            let mut path = Vec::new();
            let mut node = self.nodes[leaf as usize].parent;
            while node != 0 {
                let n = &self.nodes[node as usize];
                path.push(self.rank_to_item[n.rank as usize]);
                node = n.parent;
            }
            if !path.is_empty() {
                base.push((path, weight));
            }
        }
        base
    }
}

/// Emits every non-empty subset of a single path, each with the count of
/// its deepest (least-frequent) member, appended to `suffix`.
fn emit_single_path(
    path: &[(ItemId, u64)],
    suffix: &[ItemId],
    max_len: usize,
    out: &mut Vec<(Itemset, u64)>,
    guard: &BudgetGuard,
) -> Result<(), BudgetBreach> {
    let budget = max_len.saturating_sub(suffix.len());
    if budget == 0 || path.is_empty() {
        return Ok(());
    }
    let n = path.len();
    for mask in 1u32..(1 << n) {
        if (mask.count_ones() as usize) > budget {
            continue;
        }
        // Count of a subset of a single path = count at its deepest node.
        let deepest = 31 - mask.leading_zeros();
        let count = path[deepest as usize].1;
        let mut items: Vec<ItemId> = suffix.to_vec();
        items.extend((0..n).filter(|&i| mask & (1 << i) != 0).map(|i| path[i].0));
        guard.charge_itemsets(1)?;
        out.push((Itemset::from_items(items), count));
    }
    Ok(())
}

/// Per-run mining statistics, accumulated locally (no synchronization in
/// the hot recursion) and reported once by [`fpgrowth_with`].
#[derive(Debug, Clone, Copy, Default)]
struct MineStats {
    /// Conditional FP-trees built during the recursion.
    conditional_trees: u64,
    /// Times the single-prefix-path shortcut replaced recursion.
    single_path_hits: u64,
}

impl MineStats {
    fn merge(&mut self, other: MineStats) {
        self.conditional_trees += other.conditional_trees;
        self.single_path_hits += other.single_path_hits;
    }
}

/// Recursive FP-Growth over a (conditional) tree. The budget guard is
/// polled once per call and charged per emitted itemset / built tree, so
/// a breach surfaces within one conditional subtree of work.
fn mine_tree(
    tree: &FpTree,
    suffix: &[ItemId],
    min_count: u64,
    max_len: usize,
    out: &mut Vec<(Itemset, u64)>,
    stats: &mut MineStats,
    guard: &BudgetGuard,
) -> Result<(), BudgetBreach> {
    if suffix.len() >= max_len {
        return Ok(());
    }
    guard.checkpoint()?;
    // Single-prefix-path shortcut: subset enumeration replaces recursion.
    // Paths wider than the u32 subset mask fall through to the general case.
    if let Some(path) = tree.single_path() {
        if path.len() <= 31 {
            stats.single_path_hits += 1;
            return emit_single_path(&path, suffix, max_len, out, guard);
        }
    }
    for rank in (0..tree.n_ranks() as u32).rev() {
        let count = tree.rank_counts[rank as usize];
        let item = tree.rank_to_item[rank as usize];
        let mut itemset: Vec<ItemId> = suffix.to_vec();
        itemset.push(item);
        guard.charge_itemsets(1)?;
        out.push((Itemset::from_items(itemset.clone()), count));
        if itemset.len() < max_len {
            let base = tree.pattern_base(rank);
            if !base.is_empty() {
                let cond = FpTree::build(
                    base.iter().map(|(p, w)| (p.as_slice(), *w)),
                    item_universe(&base),
                    min_count,
                );
                guard.charge_tree_bytes(cond.estimated_bytes())?;
                stats.conditional_trees += 1;
                if cond.n_ranks() > 0 {
                    mine_tree(&cond, &itemset, min_count, max_len, out, stats, guard)?;
                }
            }
        }
    }
    Ok(())
}

/// Smallest universe covering all items in a pattern base.
fn item_universe(base: &[(Vec<ItemId>, u64)]) -> usize {
    base.iter()
        .flat_map(|(p, _)| p.iter())
        .map(|&i| i as usize + 1)
        .max()
        .unwrap_or(0)
}

/// Mines all frequent itemsets with FP-Growth.
///
/// Equivalent to [`crate::apriori`] and [`crate::eclat`] in output (the
/// equivalence is property-tested) but asymptotically cheaper on large,
/// dense databases.
pub fn fpgrowth(db: &TransactionDb, config: &MinerConfig) -> FrequentItemsets {
    fpgrowth_with(db, config, &Metrics::disabled())
}

/// [`fpgrowth`] with observability: emits a `mine.tree_build` stage event
/// (transactions in, surviving frequent items) and a `mine.mine` event
/// (itemsets out, conditional trees built, single-path shortcuts taken)
/// into `metrics`. Statistics are accumulated thread-locally and merged,
/// so the recursion is as hot as the uninstrumented path.
pub fn fpgrowth_with(
    db: &TransactionDb,
    config: &MinerConfig,
    metrics: &Metrics,
) -> FrequentItemsets {
    match try_fpgrowth_with(db, config, metrics, &BudgetGuard::unlimited()) {
        Ok(frequent) => frequent,
        // An unlimited guard never trips and contains no injected faults,
        // so the only reachable error is a config one — the panic the
        // infallible signature always had.
        Err(e) => panic!("{e}"),
    }
}

/// Renders a `catch_unwind` payload for a [`MineError::WorkerPanic`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`fpgrowth_with`] made fault-tolerant: budget breaches come back as
/// [`MineError::Budget`], an invalid config as [`MineError::InvalidConfig`],
/// and a panic inside one rank's parallel subtree is contained by a
/// per-rank `catch_unwind` and surfaced as [`MineError::WorkerPanic`]
/// (lowest poisoned rank wins, so the error is deterministic).
pub fn try_fpgrowth_with(
    db: &TransactionDb,
    config: &MinerConfig,
    metrics: &Metrics,
    guard: &BudgetGuard,
) -> Result<FrequentItemsets, MineError> {
    config.validate().map_err(MineError::InvalidConfig)?;
    let min_count = config.min_count(db.len());
    guard.checkpoint_now()?;

    let mut span = metrics.span("mine.tree_build");
    let tree = FpTree::build(db.iter().map(|t| (t, 1)), db.n_items(), min_count);
    span.field("transactions_in", db.len() as u64);
    span.field("frequent_items", tree.n_ranks() as u64);
    span.field("tree_nodes", tree.nodes.len() as u64);
    drop(span);
    guard.charge_tree_bytes(tree.estimated_bytes())?;
    guard.checkpoint_now()?;

    let mut span = metrics.span("mine.mine");
    let mut out: Vec<(Itemset, u64)> = Vec::new();
    let mut stats = MineStats::default();
    if tree.n_ranks() == 0 {
        span.field("itemsets_out", 0);
        drop(span);
        return Ok(FrequentItemsets::new(out, db.len()));
    }

    if config.parallel {
        // Top-level fan-out: each rank's conditional subtree is independent.
        // Each unit of work runs inside its own catch_unwind, so one
        // poisoned worker yields a typed error instead of unwinding
        // through the thread-pool join.
        type RankResult = Result<(Vec<(Itemset, u64)>, MineStats), MineError>;
        let chunks: Vec<RankResult> = (0..tree.n_ranks() as u32)
            .into_par_iter()
            .map(|rank| {
                std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<_, BudgetBreach> {
                    let mut local = Vec::new();
                    let mut local_stats = MineStats::default();
                    let count = tree.rank_counts[rank as usize];
                    let item = tree.rank_to_item[rank as usize];
                    // Explicit child span: each rank's subtree is one unit of
                    // parallel work, nested under `mine.mine` (implicit
                    // parenting is ambiguous across worker threads).
                    let mut rank_span = span.child("mine.conditional_tree");
                    guard.charge_itemsets(1)?;
                    local.push((Itemset::singleton(item), count));
                    if config.max_len > 1 {
                        let base = tree.pattern_base(rank);
                        if !base.is_empty() {
                            let cond = FpTree::build(
                                base.iter().map(|(p, w)| (p.as_slice(), *w)),
                                item_universe(&base),
                                min_count,
                            );
                            guard.charge_tree_bytes(cond.estimated_bytes())?;
                            local_stats.conditional_trees += 1;
                            if cond.n_ranks() > 0 {
                                mine_tree(
                                    &cond,
                                    &[item],
                                    min_count,
                                    config.max_len,
                                    &mut local,
                                    &mut local_stats,
                                    guard,
                                )?;
                            }
                        }
                    }
                    rank_span.field("item", item as u64);
                    rank_span.field("itemsets_out", local.len() as u64);
                    Ok((local, local_stats))
                }))
                .map_err(|payload| MineError::WorkerPanic {
                    message: panic_message(payload),
                })
                .and_then(|r| r.map_err(MineError::from))
            })
            .collect();
        for chunk in chunks {
            let (chunk, chunk_stats) = chunk?;
            out.extend(chunk);
            stats.merge(chunk_stats);
        }
    } else {
        mine_tree(
            &tree,
            &[],
            min_count,
            config.max_len,
            &mut out,
            &mut stats,
            guard,
        )?;
    }

    span.field("itemsets_out", out.len() as u64);
    span.field("conditional_trees", stats.conditional_trees);
    span.field("single_path_shortcuts", stats.single_path_hits);
    drop(span);

    Ok(FrequentItemsets::new(out, db.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic textbook database (Tan, Steinbach, Kumar §6).
    fn textbook_db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 1],       // {a, b}
            vec![1, 2, 3],    // {b, c, d}
            vec![0, 2, 3, 4], // {a, c, d, e}
            vec![0, 3, 4],    // {a, d, e}
            vec![0, 1, 2],    // {a, b, c}
            vec![0, 1, 2, 3], // {a, b, c, d}
            vec![0],          // {a}
            vec![0, 1, 2],    // {a, b, c}
            vec![0, 1, 3],    // {a, b, d}
            vec![1, 2, 4],    // {b, c, e}
        ])
    }

    fn mine_with(db: &TransactionDb, min_support: f64, parallel: bool) -> FrequentItemsets {
        let config = MinerConfig {
            min_support,
            max_len: 5,
            parallel,
        };
        fpgrowth(db, &config)
    }

    #[test]
    fn counts_match_brute_force() {
        let db = textbook_db();
        let fi = mine_with(&db, 0.2, false);
        assert!(!fi.is_empty());
        for (set, count) in fi.iter() {
            assert_eq!(*count, db.support_count(set), "wrong count for {set}");
        }
    }

    #[test]
    fn finds_all_frequent_itemsets() {
        let db = textbook_db();
        let fi = mine_with(&db, 0.2, false);
        // Brute-force enumeration over the 5-item universe.
        let mut expected = 0usize;
        for mask in 1u32..(1 << 5) {
            let set = Itemset::from_items((0..5).filter(|&i| mask & (1 << i) != 0));
            let count = db.support_count(&set);
            if count >= 2 {
                expected += 1;
                assert_eq!(fi.count(&set), Some(count), "missing {set}");
            } else {
                assert_eq!(fi.count(&set), None, "spurious {set}");
            }
        }
        assert_eq!(fi.len(), expected);
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = textbook_db();
        let seq = mine_with(&db, 0.2, false);
        let par = mine_with(&db, 0.2, true);
        assert_eq!(seq.as_slice(), par.as_slice());
    }

    #[test]
    fn max_len_caps_itemsets() {
        let db = textbook_db();
        let config = MinerConfig {
            min_support: 0.1,
            max_len: 2,
            parallel: false,
        };
        let fi = fpgrowth(&db, &config);
        assert!(fi.iter().all(|(s, _)| s.len() <= 2));
        // And the capped family equals the full family filtered to len<=2.
        let full = mine_with(&db, 0.1, false);
        let expected: Vec<_> = full.iter().filter(|(s, _)| s.len() <= 2).cloned().collect();
        assert_eq!(fi.as_slice(), expected.as_slice());
    }

    #[test]
    fn high_support_returns_only_heavy_hitters() {
        let db = textbook_db();
        let fi = mine_with(&db, 0.8, false);
        assert_eq!(fi.len(), 1);
        assert_eq!(fi.count(&Itemset::singleton(0)), Some(8));
    }

    #[test]
    fn empty_db_yields_nothing() {
        let db = TransactionDb::from_transactions(Vec::<Vec<ItemId>>::new());
        let fi = mine_with(&db, 0.5, false);
        assert!(fi.is_empty());
    }

    #[test]
    fn single_transaction() {
        let db = TransactionDb::from_transactions(vec![vec![0, 1, 2]]);
        let fi = mine_with(&db, 1.0, false);
        assert_eq!(fi.len(), 7); // 2^3 - 1 subsets
        assert_eq!(fi.count(&Itemset::from_items([0, 1, 2])), Some(1));
    }

    #[test]
    fn metrics_capture_build_and_mine_split() {
        let db = textbook_db();
        let metrics = Metrics::enabled();
        let fi = fpgrowth_with(&db, &MinerConfig::with_min_support(0.2), &metrics);
        let snap = metrics.snapshot();
        let build = snap.stage("mine.tree_build").expect("tree_build event");
        assert_eq!(build.field("transactions_in"), Some(10));
        assert_eq!(build.field("frequent_items"), Some(5));
        let mine = snap.stage("mine.mine").expect("mine event");
        assert_eq!(mine.field("itemsets_out"), Some(fi.len() as u64));
        assert!(mine.field("conditional_trees").unwrap() > 0);
        // The parallel fan-out nests one conditional-tree span per
        // frequent item under `mine.mine`.
        let children: Vec<_> = snap
            .stages
            .iter()
            .filter(|e| e.stage == "mine.conditional_tree")
            .collect();
        assert_eq!(children.len(), 5);
        assert!(children.iter().all(|c| c.parent == Some(mine.id)));
        let per_rank: u64 = children
            .iter()
            .map(|c| c.field("itemsets_out").unwrap())
            .sum();
        assert_eq!(per_rank, fi.len() as u64);
        // Disabled-path result is identical.
        let plain = fpgrowth(&db, &MinerConfig::with_min_support(0.2));
        assert_eq!(plain.as_slice(), fi.as_slice());
    }

    /// Regression: `FpTree::build` used to require `I: Clone` and scan the
    /// input twice (once to count, once to insert). It must drain a
    /// one-shot iterator exactly once and still produce correct counts.
    #[test]
    fn build_drains_input_exactly_once() {
        use std::cell::Cell;

        let paths: Vec<(Vec<ItemId>, u64)> =
            vec![(vec![0, 1], 1), (vec![1, 2, 3], 1), (vec![0, 2], 2)];
        let yielded = Cell::new(0usize);
        // A non-Clone iterator: capturing `&Cell` by reference keeps it
        // usable, but the closure tracks every element handed out.
        let once = paths.iter().map(|(p, w)| {
            yielded.set(yielded.get() + 1);
            (p.as_slice(), *w)
        });
        let tree = FpTree::build(once, 4, 1);
        assert_eq!(yielded.get(), paths.len(), "input drained more than once");
        // Counts survive the single pass: item 0 appears with weight 1+2.
        let rank0 = tree
            .rank_to_item
            .iter()
            .position(|&i| i == 0)
            .expect("item 0 is frequent");
        assert_eq!(tree.rank_counts[rank0], 3);
    }

    #[test]
    fn single_path_shortcut_counts() {
        // All transactions share a prefix chain: a > b > c strictly nested.
        let db = TransactionDb::from_transactions(vec![
            vec![0],
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 1, 2],
        ]);
        let fi = mine_with(&db, 0.25, false);
        assert_eq!(fi.count(&Itemset::from_items([0])), Some(4));
        assert_eq!(fi.count(&Itemset::from_items([0, 1])), Some(3));
        assert_eq!(fi.count(&Itemset::from_items([1, 2])), Some(2));
        assert_eq!(fi.count(&Itemset::from_items([0, 1, 2])), Some(2));
        assert_eq!(fi.count(&Itemset::from_items([2])), Some(2));
    }
}
