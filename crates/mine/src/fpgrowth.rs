//! FP-Growth frequent-itemset mining (Han et al., DMKD 2004).
//!
//! The paper adopts FP-Growth over Apriori because the traces are large
//! (850k jobs for PAI) and Apriori's candidate generation blows up at 5%
//! support (§III-C). This implementation is hand-rolled:
//!
//! * the FP-tree lives in a flat arena (`Vec<FpNode>`) with intrusive
//!   `first_child` / `next_sibling` / `next_header` links — no `Rc`/
//!   `RefCell` pointer chasing, no per-node allocation at all;
//! * conditional trees are built from weighted prefix paths, re-ranked by
//!   conditional frequency;
//! * single-prefix-path subtrees short-circuit into direct subset
//!   enumeration;
//! * every working structure the recursion needs (pattern base, build
//!   scratch, conditional tree, path buffer) comes from a per-worker
//!   [`Frame`] pool, so steady-state mining performs zero heap
//!   allocation beyond the emitted itemsets themselves;
//! * under `config.parallel`, the recursion fans out through
//!   [`rayon::join`]: rank ranges split in two at *every* depth (above a
//!   node-count threshold), so skewed conditional subtrees become
//!   stealable tasks instead of serializing behind a static per-rank
//!   chunking. Results are merged left-before-right in rank order, so
//!   the output is identical regardless of which worker ran what.

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;

use irma_obs::{Metrics, StageSpan};

use crate::budget::{BudgetBreach, BudgetGuard, MineError};
use crate::counts::{FrequentItemsets, MinerConfig};
use crate::db::TransactionDb;
use crate::item::{ItemId, Itemset};

/// Sentinel rank used for the root node.
const NO_ITEM: u32 = u32::MAX;
/// Sentinel arena index terminating intrusive lists.
const NO_NODE: u32 = u32::MAX;
/// A conditional tree smaller than this mines inline rather than
/// forking: the join/steal overhead would exceed the subtree's work.
/// (The top level always forks — per-rank subtrees are the natural
/// parallel units and each gets an observability span.)
const FORK_NODE_THRESHOLD: usize = 128;

/// One FP-tree node (32 bytes; all links are arena indices).
#[derive(Debug, Clone)]
struct FpNode {
    /// Rank (frequency-order index) of the item at this node.
    rank: u32,
    /// Accumulated path count.
    count: u64,
    /// Arena index of the parent (root's parent is itself).
    parent: u32,
    /// Head of this node's child list.
    first_child: u32,
    /// Next node in the parent's child list.
    next_sibling: u32,
    /// Next node holding the same rank (header chain).
    next_header: u32,
}

/// The conditional pattern base of one rank: weighted prefix paths,
/// stored flat (one item vector + `(start, end, weight)` spans) so a
/// cleared base reuses its allocations on the next fill.
#[derive(Debug, Default)]
struct PatternBase {
    items: Vec<ItemId>,
    spans: Vec<(u32, u32, u64)>,
    /// Smallest universe covering every item present (`max item + 1`).
    universe: usize,
}

impl PatternBase {
    fn clear(&mut self) {
        self.items.clear();
        self.spans.clear();
        self.universe = 0;
    }

    fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Weighted paths in insertion order, borrowed from the flat store.
    fn paths(&self) -> impl Iterator<Item = (&[ItemId], u64)> + '_ {
        self.spans
            .iter()
            .map(move |&(start, end, weight)| (&self.items[start as usize..end as usize], weight))
    }

    /// Fills from an iterator of weighted paths, draining it exactly
    /// once (the input may be a one-shot iterator).
    fn fill<'a, I>(&mut self, paths: I)
    where
        I: IntoIterator<Item = (&'a [ItemId], u64)>,
    {
        self.clear();
        for (path, weight) in paths {
            let start = self.items.len() as u32;
            self.items.extend_from_slice(path);
            for &item in path {
                self.universe = self.universe.max(item as usize + 1);
            }
            self.spans.push((start, self.items.len() as u32, weight));
        }
    }
}

/// Reusable buffers for [`FpTree::rebuild`]'s count/rank/insert passes.
#[derive(Debug, Default)]
struct BuildScratch {
    counts: Vec<u64>,
    item_to_rank: Vec<u32>,
    frequent: Vec<ItemId>,
    ranked: Vec<u32>,
}

/// An FP-tree over an item universe restricted to frequent items.
#[derive(Debug, Default)]
struct FpTree {
    nodes: Vec<FpNode>,
    /// Per-rank head of the intrusive header chain (`NO_NODE` = empty).
    headers: Vec<u32>,
    /// Per-rank total support count.
    rank_counts: Vec<u64>,
    /// Rank -> global item id.
    rank_to_item: Vec<ItemId>,
}

impl FpTree {
    /// Builds a fresh tree from weighted paths of *global* item ids.
    /// Convenience wrapper over [`PatternBase::fill`] + [`rebuild`] for
    /// the root tree and tests; the recursion reuses pooled frames
    /// instead.
    ///
    /// The input is drained exactly once, so one-shot iterators are
    /// usable and whatever computation feeds `paths` never re-runs.
    ///
    /// [`rebuild`]: FpTree::rebuild
    fn build<'a, I>(paths: I, n_items: usize, min_count: u64) -> FpTree
    where
        I: IntoIterator<Item = (&'a [ItemId], u64)>,
    {
        let mut base = PatternBase::default();
        base.fill(paths);
        base.universe = base.universe.max(n_items);
        let mut tree = FpTree::default();
        let mut scratch = BuildScratch::default();
        tree.rebuild(&base, min_count, &mut scratch);
        tree
    }

    /// Rebuilds this tree in place from a pattern base, reusing every
    /// allocation from the previous occupant.
    ///
    /// Items below `min_count` are dropped; survivors are ranked by
    /// descending count (ascending id tie-break, so results are
    /// deterministic regardless of thread scheduling).
    fn rebuild(&mut self, base: &PatternBase, min_count: u64, scratch: &mut BuildScratch) {
        let n_items = base.universe;
        scratch.counts.clear();
        scratch.counts.resize(n_items, 0);
        for (path, weight) in base.paths() {
            for &item in path {
                scratch.counts[item as usize] += weight;
            }
        }
        scratch.frequent.clear();
        scratch
            .frequent
            .extend((0..n_items as ItemId).filter(|&i| scratch.counts[i as usize] >= min_count));
        let counts = &scratch.counts;
        scratch.frequent.sort_unstable_by(|&a, &b| {
            counts[b as usize]
                .cmp(&counts[a as usize])
                .then_with(|| a.cmp(&b))
        });
        scratch.item_to_rank.clear();
        scratch.item_to_rank.resize(n_items, NO_ITEM);
        for (rank, &item) in scratch.frequent.iter().enumerate() {
            scratch.item_to_rank[item as usize] = rank as u32;
        }

        self.nodes.clear();
        self.nodes.push(FpNode {
            rank: NO_ITEM,
            count: 0,
            parent: 0,
            first_child: NO_NODE,
            next_sibling: NO_NODE,
            next_header: NO_NODE,
        });
        self.headers.clear();
        self.headers.resize(scratch.frequent.len(), NO_NODE);
        self.rank_counts.clear();
        self.rank_counts
            .extend(scratch.frequent.iter().map(|&i| scratch.counts[i as usize]));
        self.rank_to_item.clear();
        self.rank_to_item.extend_from_slice(&scratch.frequent);

        for (path, weight) in base.paths() {
            scratch.ranked.clear();
            scratch.ranked.extend(
                path.iter()
                    .map(|&i| scratch.item_to_rank[i as usize])
                    .filter(|&r| r != NO_ITEM),
            );
            scratch.ranked.sort_unstable();
            self.insert(&scratch.ranked, weight);
        }
    }

    /// Inserts one ranked path with a weight. Children are matched by a
    /// linear scan and appended at the tail on a miss: ranked paths are
    /// inserted in ascending-rank order, so the most frequent ranks land
    /// near the front of each child list where the scan finds them
    /// first.
    fn insert(&mut self, ranked: &[u32], weight: u64) {
        let mut node = 0u32;
        for &rank in ranked {
            let mut child = self.nodes[node as usize].first_child;
            let mut last = NO_NODE;
            while child != NO_NODE && self.nodes[child as usize].rank != rank {
                last = child;
                child = self.nodes[child as usize].next_sibling;
            }
            node = if child != NO_NODE {
                self.nodes[child as usize].count += weight;
                child
            } else {
                let new = self.nodes.len() as u32;
                self.nodes.push(FpNode {
                    rank,
                    count: weight,
                    parent: node,
                    first_child: NO_NODE,
                    next_sibling: NO_NODE,
                    next_header: self.headers[rank as usize],
                });
                self.headers[rank as usize] = new;
                if last == NO_NODE {
                    self.nodes[node as usize].first_child = new;
                } else {
                    self.nodes[last as usize].next_sibling = new;
                }
                new
            };
        }
    }

    /// Number of distinct frequent items in this tree.
    fn n_ranks(&self) -> usize {
        self.rank_to_item.len()
    }

    /// If the whole tree is one downward path, fills `out` with its
    /// `(item, count)` pairs (root excluded) and returns `true`. On
    /// `false`, `out` holds a meaningless prefix.
    fn single_path_into(&self, out: &mut Vec<(ItemId, u64)>) -> bool {
        out.clear();
        let mut node = 0usize;
        loop {
            let first = self.nodes[node].first_child;
            if first == NO_NODE {
                return true;
            }
            if self.nodes[first as usize].next_sibling != NO_NODE {
                return false;
            }
            node = first as usize;
            let n = &self.nodes[node];
            out.push((self.rank_to_item[n.rank as usize], n.count));
        }
    }

    /// Estimated arena footprint: nodes plus the per-rank tables. An
    /// upper bound on what `rebuild` grew the arena to, charged against
    /// [`BudgetGuard::charge_tree_bytes`].
    fn estimated_bytes(&self) -> u64 {
        let node = std::mem::size_of::<FpNode>() as u64;
        // headers (4) + rank_counts (8) + rank_to_item (4) per rank.
        self.nodes.len() as u64 * node + self.n_ranks() as u64 * 16
    }

    /// Writes the conditional pattern base of `rank` — weighted prefix
    /// paths of global item ids — into a caller-provided scratch base
    /// (unsorted; `rebuild` re-ranks anyway). Borrowed flat storage
    /// replaces the former per-call `Vec<(Vec<ItemId>, u64)>`, so the
    /// projection loop stops allocating once the pool is warm.
    fn pattern_base_into(&self, rank: u32, out: &mut PatternBase) {
        out.clear();
        let mut leaf = self.headers[rank as usize];
        while leaf != NO_NODE {
            let weight = self.nodes[leaf as usize].count;
            let start = out.items.len() as u32;
            let mut node = self.nodes[leaf as usize].parent;
            while node != 0 {
                let n = &self.nodes[node as usize];
                let item = self.rank_to_item[n.rank as usize];
                out.universe = out.universe.max(item as usize + 1);
                out.items.push(item);
                node = n.parent;
            }
            let end = out.items.len() as u32;
            if end > start {
                out.spans.push((start, end, weight));
            }
            leaf = self.nodes[leaf as usize].next_header;
        }
    }
}

/// One level of reusable mining state: a conditional tree, the pattern
/// base feeding it, the build scratch, and a single-path buffer. Frames
/// live in a per-worker pool ([`with_frame`]); each recursion level owns
/// exactly one frame while active, so stolen subtasks on other workers
/// draw from their own pools and nothing is shared.
#[derive(Debug, Default)]
struct Frame {
    tree: FpTree,
    base: PatternBase,
    build: BuildScratch,
    path: Vec<(ItemId, u64)>,
}

impl Frame {
    fn clear(&mut self) {
        // Buffers are overwritten by the next occupant; only the
        // capacity is meant to survive. `clear` keeps the pool's memory
        // bounded by the deepest recursion actually reached.
        self.base.clear();
        self.path.clear();
    }
}

thread_local! {
    static FRAME_POOL: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a pooled [`Frame`]: pops one (or allocates the first
/// time this worker reaches this depth) and returns it afterwards. In
/// steady state every pop is a hit and the recursion allocates nothing.
fn with_frame<R>(f: impl FnOnce(&mut Frame) -> R) -> R {
    let mut frame = FRAME_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    let result = f(&mut frame);
    frame.clear();
    FRAME_POOL.with(|pool| pool.borrow_mut().push(frame));
    result
}

/// Emits every non-empty subset of a single path, each with the count of
/// its deepest (least-frequent) member, appended to `suffix`.
fn emit_single_path(
    path: &[(ItemId, u64)],
    suffix: &[ItemId],
    max_len: usize,
    out: &mut Vec<(Itemset, u64)>,
    guard: &BudgetGuard,
) -> Result<(), BudgetBreach> {
    let budget = max_len.saturating_sub(suffix.len());
    if budget == 0 || path.is_empty() {
        return Ok(());
    }
    let n = path.len();
    for mask in 1u32..(1 << n) {
        if (mask.count_ones() as usize) > budget {
            continue;
        }
        // Count of a subset of a single path = count at its deepest node.
        let deepest = 31 - mask.leading_zeros();
        let count = path[deepest as usize].1;
        let mut items: Vec<ItemId> = suffix.to_vec();
        items.extend((0..n).filter(|&i| mask & (1 << i) != 0).map(|i| path[i].0));
        guard.charge_itemsets(1)?;
        out.push((Itemset::from_items(items), count));
    }
    Ok(())
}

/// Per-run mining statistics, accumulated locally (no synchronization in
/// the hot recursion) and merged in rank order by [`fpgrowth_with`].
#[derive(Debug, Clone, Copy, Default)]
struct MineStats {
    /// Conditional FP-trees built during the recursion.
    conditional_trees: u64,
    /// Times the single-prefix-path shortcut replaced recursion.
    single_path_hits: u64,
}

impl MineStats {
    fn merge(&mut self, other: MineStats) {
        self.conditional_trees += other.conditional_trees;
        self.single_path_hits += other.single_path_hits;
    }
}

/// Immutable mining parameters threaded through the recursion. The
/// budget guard rides along by reference, so budget charges and
/// cancellation checks from *stolen* subtasks hit the same shared
/// accounting as the spawning worker's.
struct MineCtx<'a> {
    min_count: u64,
    max_len: usize,
    /// Pool width captured once at mine start; 1 disables forking.
    width: usize,
    guard: &'a BudgetGuard,
}

/// A batch of emitted itemsets from one subtree, merged in rank order.
type Chunk = Vec<(Itemset, u64)>;

/// Sequential recursive FP-Growth over a (conditional) tree. The budget
/// guard is polled once per call and charged per emitted itemset / built
/// tree, so a breach surfaces within one conditional subtree of work.
fn mine_tree(
    tree: &FpTree,
    suffix: &mut Vec<ItemId>,
    ctx: &MineCtx<'_>,
    out: &mut Chunk,
    stats: &mut MineStats,
) -> Result<(), BudgetBreach> {
    if suffix.len() >= ctx.max_len {
        return Ok(());
    }
    ctx.guard.checkpoint()?;
    with_frame(|frame| {
        // Single-prefix-path shortcut: subset enumeration replaces
        // recursion. Paths wider than the u32 subset mask fall through
        // to the general case.
        if tree.single_path_into(&mut frame.path) && frame.path.len() <= 31 {
            stats.single_path_hits += 1;
            return emit_single_path(&frame.path, suffix, ctx.max_len, out, ctx.guard);
        }
        for rank in (0..tree.n_ranks() as u32).rev() {
            let count = tree.rank_counts[rank as usize];
            let item = tree.rank_to_item[rank as usize];
            suffix.push(item);
            ctx.guard.charge_itemsets(1)?;
            out.push((Itemset::from_items(suffix.iter().copied()), count));
            if suffix.len() < ctx.max_len {
                tree.pattern_base_into(rank, &mut frame.base);
                if !frame.base.is_empty() {
                    frame
                        .tree
                        .rebuild(&frame.base, ctx.min_count, &mut frame.build);
                    ctx.guard.charge_tree_bytes(frame.tree.estimated_bytes())?;
                    stats.conditional_trees += 1;
                    if frame.tree.n_ranks() > 0 {
                        mine_tree(&frame.tree, suffix, ctx, out, stats)?;
                    }
                }
            }
            suffix.pop();
        }
        Ok(())
    })
}

/// Parallel recursive FP-Growth over the rank range `[lo, hi)` of
/// `tree`. Ranges of two or more ranks split in half through
/// [`rayon::join`], making the right half stealable — at *every*
/// recursion depth once the tree clears [`FORK_NODE_THRESHOLD`] (the top
/// level always splits). Chunks come back in rank order regardless of
/// steal order; when several ranks fail, the lowest rank's error wins
/// (left results are preferred), so errors are deterministic too.
///
/// `span` is the enclosing `mine.mine` span; it is threaded to top-level
/// leaves only, which open one `mine.conditional_tree` child each —
/// explicit parenting, because the implicit span stack is per-registry
/// and ambiguous across worker threads.
fn mine_ranks_par(
    tree: &FpTree,
    lo: u32,
    hi: u32,
    suffix: &[ItemId],
    ctx: &MineCtx<'_>,
    span: Option<&StageSpan>,
) -> Result<(Vec<Chunk>, MineStats), MineError> {
    if hi <= lo {
        return Ok((Vec::new(), MineStats::default()));
    }
    if hi - lo == 1 {
        // Leaf: one rank, inside its own catch_unwind so a poisoned
        // worker — wherever its task was stolen to — yields a typed
        // error instead of unwinding through the pool.
        return match std::panic::catch_unwind(AssertUnwindSafe(|| {
            mine_one_rank(tree, lo, suffix, ctx, span)
        })) {
            Ok(Ok((chunk, stats))) => Ok((vec![chunk], stats)),
            Ok(Err(e)) => Err(e),
            Err(payload) => Err(MineError::WorkerPanic {
                message: panic_message(payload),
            }),
        };
    }
    let fork = ctx.width > 1 && (suffix.is_empty() || tree.nodes.len() >= FORK_NODE_THRESHOLD);
    if fork {
        let mid = lo + (hi - lo) / 2;
        let (left, right) = rayon::join(
            || mine_ranks_par(tree, lo, mid, suffix, ctx, span),
            || mine_ranks_par(tree, mid, hi, suffix, ctx, span),
        );
        return match (left, right) {
            (Ok((mut chunks, mut stats)), Ok((right_chunks, right_stats))) => {
                chunks.extend(right_chunks);
                stats.merge(right_stats);
                Ok((chunks, stats))
            }
            (Err(e), _) => Err(e),
            (_, Err(e)) => Err(e),
        };
    }
    let mut chunks = Vec::with_capacity((hi - lo) as usize);
    let mut stats = MineStats::default();
    for rank in lo..hi {
        let (sub, sub_stats) = mine_ranks_par(tree, rank, rank + 1, suffix, ctx, span)?;
        chunks.extend(sub);
        stats.merge(sub_stats);
    }
    Ok((chunks, stats))
}

/// Mines one rank's conditional subtree: emits the extended suffix, then
/// projects, rebuilds, and recurses through [`mine_ranks_par`] so deep
/// subtrees keep fanning out.
fn mine_one_rank(
    tree: &FpTree,
    rank: u32,
    suffix: &[ItemId],
    ctx: &MineCtx<'_>,
    parent: Option<&StageSpan>,
) -> Result<(Chunk, MineStats), MineError> {
    ctx.guard.checkpoint().map_err(MineError::from)?;
    let count = tree.rank_counts[rank as usize];
    let item = tree.rank_to_item[rank as usize];
    // Explicit child span (top level only): each rank's subtree is one
    // unit of parallel work, nested under `mine.mine` and attributed to
    // the worker that actually ran it.
    let mut span = parent.map(|s| s.child("mine.conditional_tree"));
    let mut chunk: Chunk = Vec::new();
    let mut stats = MineStats::default();
    ctx.guard.charge_itemsets(1).map_err(MineError::from)?;
    let mut items: Vec<ItemId> = Vec::with_capacity(suffix.len() + 1);
    items.extend_from_slice(suffix);
    items.push(item);
    chunk.push((Itemset::from_items(items.iter().copied()), count));
    if items.len() < ctx.max_len {
        with_frame(|frame| -> Result<(), MineError> {
            tree.pattern_base_into(rank, &mut frame.base);
            if frame.base.is_empty() {
                return Ok(());
            }
            frame
                .tree
                .rebuild(&frame.base, ctx.min_count, &mut frame.build);
            ctx.guard
                .charge_tree_bytes(frame.tree.estimated_bytes())
                .map_err(MineError::from)?;
            stats.conditional_trees += 1;
            if frame.tree.n_ranks() == 0 {
                return Ok(());
            }
            if frame.tree.single_path_into(&mut frame.path) && frame.path.len() <= 31 {
                stats.single_path_hits += 1;
                return emit_single_path(&frame.path, &items, ctx.max_len, &mut chunk, ctx.guard)
                    .map_err(MineError::from);
            }
            let n_ranks = frame.tree.n_ranks() as u32;
            let (sub_chunks, sub_stats) =
                mine_ranks_par(&frame.tree, 0, n_ranks, &items, ctx, None)?;
            for sub in sub_chunks {
                chunk.extend(sub);
            }
            stats.merge(sub_stats);
            Ok(())
        })?;
    }
    if let Some(span) = span.as_mut() {
        span.field("item", item as u64);
        span.field("itemsets_out", chunk.len() as u64);
        if let Some(worker) = rayon::current_thread_index() {
            span.field("worker", worker as u64);
        }
    }
    Ok((chunk, stats))
}

/// Mines all frequent itemsets with FP-Growth.
///
/// Equivalent to [`crate::apriori`] and [`crate::eclat`] in output (the
/// equivalence is property-tested) but asymptotically cheaper on large,
/// dense databases.
pub fn fpgrowth(db: &TransactionDb, config: &MinerConfig) -> FrequentItemsets {
    fpgrowth_with(db, config, &Metrics::disabled())
}

/// [`fpgrowth`] with observability: emits a `mine.tree_build` stage event
/// (transactions in, surviving frequent items) and a `mine.mine` event
/// (itemsets out, conditional trees built, single-path shortcuts taken)
/// into `metrics`. Statistics are accumulated thread-locally and merged,
/// so the recursion is as hot as the uninstrumented path.
pub fn fpgrowth_with(
    db: &TransactionDb,
    config: &MinerConfig,
    metrics: &Metrics,
) -> FrequentItemsets {
    match try_fpgrowth_with(db, config, metrics, &BudgetGuard::unlimited()) {
        Ok(frequent) => frequent,
        // An unlimited guard never trips and contains no injected faults,
        // so the only reachable error is a config one — the panic the
        // infallible signature always had.
        Err(e) => panic!("{e}"),
    }
}

/// Renders a `catch_unwind` payload for a [`MineError::WorkerPanic`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`fpgrowth_with`] made fault-tolerant: budget breaches come back as
/// [`MineError::Budget`], an invalid config as [`MineError::InvalidConfig`],
/// and a panic inside any parallel subtree — wherever it was stolen to —
/// is contained by the nearest leaf's `catch_unwind` and surfaced as
/// [`MineError::WorkerPanic`] (lowest poisoned rank wins when several
/// fail, so the error is deterministic).
pub fn try_fpgrowth_with(
    db: &TransactionDb,
    config: &MinerConfig,
    metrics: &Metrics,
    guard: &BudgetGuard,
) -> Result<FrequentItemsets, MineError> {
    try_fpgrowth_paths_with(
        db.iter().map(|t| (t, 1)),
        db.len(),
        db.n_items(),
        config,
        metrics,
        guard,
    )
}

/// [`try_fpgrowth_with`] over *weighted paths* instead of a materialized
/// [`TransactionDb`]: the entry point for callers that already hold the
/// window in compressed form (the incrementally-maintained prefix tree in
/// [`crate::SlidingWindowMiner`]), so re-mining skips the
/// per-transaction copy into a database.
///
/// `n_transactions` is the support denominator — the number of window
/// transactions the paths encode (path weights need not sum to it when
/// empty transactions are in the window; they contribute to the
/// denominator but to no path). The output is identical to mining the
/// materialized window: the tree builder recounts and re-ranks from the
/// weighted multiset, which insertion order cannot affect.
pub fn try_fpgrowth_paths_with<'a, I>(
    paths: I,
    n_transactions: usize,
    n_items: usize,
    config: &MinerConfig,
    metrics: &Metrics,
    guard: &BudgetGuard,
) -> Result<FrequentItemsets, MineError>
where
    I: IntoIterator<Item = (&'a [ItemId], u64)>,
{
    config.validate().map_err(MineError::InvalidConfig)?;
    let min_count = config.min_count(n_transactions);
    guard.checkpoint_now()?;

    let mut span = metrics.span("mine.tree_build");
    let tree = FpTree::build(paths, n_items, min_count);
    span.field("transactions_in", n_transactions as u64);
    span.field("frequent_items", tree.n_ranks() as u64);
    span.field("tree_nodes", tree.nodes.len() as u64);
    drop(span);
    guard.charge_tree_bytes(tree.estimated_bytes())?;
    guard.checkpoint_now()?;

    let mut span = metrics.span("mine.mine");
    let mut out: Chunk = Vec::new();
    let mut stats = MineStats::default();
    if tree.n_ranks() == 0 {
        span.field("itemsets_out", 0);
        drop(span);
        return Ok(FrequentItemsets::new(out, n_transactions));
    }

    let ctx = MineCtx {
        min_count,
        max_len: config.max_len,
        width: rayon::current_num_threads(),
        guard,
    };
    if config.parallel {
        let (chunks, par_stats) =
            mine_ranks_par(&tree, 0, tree.n_ranks() as u32, &[], &ctx, Some(&span))?;
        for chunk in chunks {
            out.extend(chunk);
        }
        stats.merge(par_stats);
    } else {
        let mut suffix: Vec<ItemId> = Vec::new();
        mine_tree(&tree, &mut suffix, &ctx, &mut out, &mut stats)?;
    }

    span.field("itemsets_out", out.len() as u64);
    span.field("conditional_trees", stats.conditional_trees);
    span.field("single_path_shortcuts", stats.single_path_hits);
    drop(span);

    Ok(FrequentItemsets::new(out, n_transactions))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic textbook database (Tan, Steinbach, Kumar §6).
    fn textbook_db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 1],       // {a, b}
            vec![1, 2, 3],    // {b, c, d}
            vec![0, 2, 3, 4], // {a, c, d, e}
            vec![0, 3, 4],    // {a, d, e}
            vec![0, 1, 2],    // {a, b, c}
            vec![0, 1, 2, 3], // {a, b, c, d}
            vec![0],          // {a}
            vec![0, 1, 2],    // {a, b, c}
            vec![0, 1, 3],    // {a, b, d}
            vec![1, 2, 4],    // {b, c, e}
        ])
    }

    fn mine_with(db: &TransactionDb, min_support: f64, parallel: bool) -> FrequentItemsets {
        let config = MinerConfig {
            min_support,
            max_len: 5,
            parallel,
        };
        fpgrowth(db, &config)
    }

    #[test]
    fn counts_match_brute_force() {
        let db = textbook_db();
        let fi = mine_with(&db, 0.2, false);
        assert!(!fi.is_empty());
        for (set, count) in fi.iter() {
            assert_eq!(*count, db.support_count(set), "wrong count for {set}");
        }
    }

    #[test]
    fn finds_all_frequent_itemsets() {
        let db = textbook_db();
        let fi = mine_with(&db, 0.2, false);
        // Brute-force enumeration over the 5-item universe.
        let mut expected = 0usize;
        for mask in 1u32..(1 << 5) {
            let set = Itemset::from_items((0..5).filter(|&i| mask & (1 << i) != 0));
            let count = db.support_count(&set);
            if count >= 2 {
                expected += 1;
                assert_eq!(fi.count(&set), Some(count), "missing {set}");
            } else {
                assert_eq!(fi.count(&set), None, "spurious {set}");
            }
        }
        assert_eq!(fi.len(), expected);
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = textbook_db();
        let seq = mine_with(&db, 0.2, false);
        let par = mine_with(&db, 0.2, true);
        assert_eq!(seq.as_slice(), par.as_slice());
    }

    #[test]
    fn parallel_matches_sequential_on_multithread_pool() {
        let db = textbook_db();
        let seq = mine_with(&db, 0.2, false);
        for width in [2usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .unwrap();
            let par = pool.install(|| mine_with(&db, 0.2, true));
            assert_eq!(seq.as_slice(), par.as_slice(), "width {width}");
        }
    }

    #[test]
    fn max_len_caps_itemsets() {
        let db = textbook_db();
        let config = MinerConfig {
            min_support: 0.1,
            max_len: 2,
            parallel: false,
        };
        let fi = fpgrowth(&db, &config);
        assert!(fi.iter().all(|(s, _)| s.len() <= 2));
        // And the capped family equals the full family filtered to len<=2.
        let full = mine_with(&db, 0.1, false);
        let expected: Vec<_> = full.iter().filter(|(s, _)| s.len() <= 2).cloned().collect();
        assert_eq!(fi.as_slice(), expected.as_slice());
    }

    #[test]
    fn high_support_returns_only_heavy_hitters() {
        let db = textbook_db();
        let fi = mine_with(&db, 0.8, false);
        assert_eq!(fi.len(), 1);
        assert_eq!(fi.count(&Itemset::singleton(0)), Some(8));
    }

    #[test]
    fn empty_db_yields_nothing() {
        let db = TransactionDb::from_transactions(Vec::<Vec<ItemId>>::new());
        let fi = mine_with(&db, 0.5, false);
        assert!(fi.is_empty());
    }

    #[test]
    fn single_transaction() {
        let db = TransactionDb::from_transactions(vec![vec![0, 1, 2]]);
        let fi = mine_with(&db, 1.0, false);
        assert_eq!(fi.len(), 7); // 2^3 - 1 subsets
        assert_eq!(fi.count(&Itemset::from_items([0, 1, 2])), Some(1));
    }

    #[test]
    fn metrics_capture_build_and_mine_split() {
        let db = textbook_db();
        let metrics = Metrics::enabled();
        let fi = fpgrowth_with(&db, &MinerConfig::with_min_support(0.2), &metrics);
        let snap = metrics.snapshot();
        let build = snap.stage("mine.tree_build").expect("tree_build event");
        assert_eq!(build.field("transactions_in"), Some(10));
        assert_eq!(build.field("frequent_items"), Some(5));
        let mine = snap.stage("mine.mine").expect("mine event");
        assert_eq!(mine.field("itemsets_out"), Some(fi.len() as u64));
        assert!(mine.field("conditional_trees").unwrap() > 0);
        // The parallel fan-out nests one conditional-tree span per
        // frequent item under `mine.mine`.
        let children: Vec<_> = snap
            .stages
            .iter()
            .filter(|e| e.stage == "mine.conditional_tree")
            .collect();
        assert_eq!(children.len(), 5);
        assert!(children.iter().all(|c| c.parent == Some(mine.id)));
        let per_rank: u64 = children
            .iter()
            .map(|c| c.field("itemsets_out").unwrap())
            .sum();
        assert_eq!(per_rank, fi.len() as u64);
        // Disabled-path result is identical.
        let plain = fpgrowth(&db, &MinerConfig::with_min_support(0.2));
        assert_eq!(plain.as_slice(), fi.as_slice());
    }

    /// Regression: `FpTree::build` used to require `I: Clone` and scan the
    /// input twice (once to count, once to insert). It must drain a
    /// one-shot iterator exactly once and still produce correct counts.
    #[test]
    fn build_drains_input_exactly_once() {
        use std::cell::Cell;

        let paths: Vec<(Vec<ItemId>, u64)> =
            vec![(vec![0, 1], 1), (vec![1, 2, 3], 1), (vec![0, 2], 2)];
        let yielded = Cell::new(0usize);
        // A non-Clone iterator: capturing `&Cell` by reference keeps it
        // usable, but the closure tracks every element handed out.
        let once = paths.iter().map(|(p, w)| {
            yielded.set(yielded.get() + 1);
            (p.as_slice(), *w)
        });
        let tree = FpTree::build(once, 4, 1);
        assert_eq!(yielded.get(), paths.len(), "input drained more than once");
        // Counts survive the single pass: item 0 appears with weight 1+2.
        let rank0 = tree
            .rank_to_item
            .iter()
            .position(|&i| i == 0)
            .expect("item 0 is frequent");
        assert_eq!(tree.rank_counts[rank0], 3);
    }

    /// Regression: `pattern_base` used to allocate a fresh
    /// `Vec<(Vec<ItemId>, u64)>` per call. The scratch-buffer variant
    /// must reuse the base's flat storage across fills.
    #[test]
    fn pattern_base_into_reuses_allocations() {
        let db = textbook_db();
        let tree = FpTree::build(db.iter().map(|t| (t, 1)), db.n_items(), 2);
        let mut base = PatternBase::default();
        // Warm the buffers on the deepest rank, then refill for every
        // rank and check capacity never shrinks (no churn).
        let last = tree.n_ranks() as u32 - 1;
        tree.pattern_base_into(last, &mut base);
        let warm_items = base.items.capacity();
        let warm_spans = base.spans.capacity();
        assert!(!base.is_empty(), "deepest rank has prefix paths");
        for rank in 0..tree.n_ranks() as u32 {
            tree.pattern_base_into(rank, &mut base);
            assert!(base.items.capacity() >= warm_items);
            assert!(base.spans.capacity() >= warm_spans);
            // Paths never contain the rank's own item, only its prefix.
            let item = tree.rank_to_item[rank as usize];
            assert!(base.paths().all(|(path, _)| !path.contains(&item)));
        }
    }

    #[test]
    fn single_path_shortcut_counts() {
        // All transactions share a prefix chain: a > b > c strictly nested.
        let db = TransactionDb::from_transactions(vec![
            vec![0],
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 1, 2],
        ]);
        let fi = mine_with(&db, 0.25, false);
        assert_eq!(fi.count(&Itemset::from_items([0])), Some(4));
        assert_eq!(fi.count(&Itemset::from_items([0, 1])), Some(3));
        assert_eq!(fi.count(&Itemset::from_items([1, 2])), Some(2));
        assert_eq!(fi.count(&Itemset::from_items([0, 1, 2])), Some(2));
        assert_eq!(fi.count(&Itemset::from_items([2])), Some(2));
    }
}
