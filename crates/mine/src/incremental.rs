//! Incrementally-maintained prefix tree over a transaction window.
//!
//! [`crate::fpgrowth`]'s `FpTree` is rebuilt from scratch on every mine,
//! which is the right trade for batch runs but O(window) per refresh in a
//! streaming loop. [`IncrementalFpTree`] is the CanTree-style companion
//! (Leung et al., ICDM 2005): transactions are inserted in *canonical*
//! ascending-item order rather than frequency order, which makes the tree
//! shape independent of arrival order and — crucially — makes single
//! transactions removable again when the sliding window evicts them.
//! Per-arrival maintenance is O(|txn|); mining extracts the weighted
//! root-to-node paths and hands them to FP-Growth's builder, which
//! re-ranks by frequency anyway.
//!
//! Invariants (checked by the windowed differential suite):
//!
//! * every live node has `count >= 1`; zero-count nodes are unlinked and
//!   recycled the moment a removal drains them, so the arena never
//!   accumulates tombstones;
//! * `count(parent) >= count(child)` for every edge (a child's
//!   transactions all pass through its parent), which is what makes
//!   removal's zero-suffix unlink safe: a drained node can have no
//!   still-live children;
//! * the window multiset is exactly recoverable: each node contributes
//!   its root-to-node path with weight `count - Σ child counts`
//!   (transactions *ending* at the node), and those weights sum to the
//!   number of inserted-but-not-removed transactions.

use crate::item::ItemId;

/// Sentinel arena index terminating intrusive lists.
const NO_NODE: u32 = u32::MAX;

/// One prefix-tree node (arena-indexed, like `FpTree`'s but keyed by
/// global item id instead of rank — canonical order never changes, so
/// there is nothing to re-rank on insert).
#[derive(Debug, Clone)]
struct IncNode {
    /// Global item id at this node.
    item: ItemId,
    /// Number of live window transactions whose canonical form passes
    /// through this node.
    count: u64,
    /// Head of this node's child list.
    first_child: u32,
    /// Next node in the parent's child list.
    next_sibling: u32,
}

/// A canonical-order prefix tree supporting O(|txn|) insert *and* remove;
/// see the module docs for the invariants.
#[derive(Debug, Clone, Default)]
pub struct IncrementalFpTree {
    /// Arena; index 0 is the item-less root.
    nodes: Vec<IncNode>,
    /// Recycled arena slots, reused before the arena grows.
    free: Vec<u32>,
    /// Live (non-root, non-recycled) node count.
    live: usize,
}

impl IncrementalFpTree {
    /// An empty tree.
    pub fn new() -> IncrementalFpTree {
        IncrementalFpTree {
            nodes: vec![IncNode {
                item: 0,
                count: 0,
                first_child: NO_NODE,
                next_sibling: NO_NODE,
            }],
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live nodes (excluding the root).
    pub fn live_nodes(&self) -> usize {
        self.live
    }

    fn alloc(&mut self, node: IncNode) -> u32 {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            slot
        } else {
            let slot = self.nodes.len() as u32;
            self.nodes.push(node);
            slot
        }
    }

    /// Inserts one transaction. `txn` must be strictly ascending (the
    /// canonical form [`crate::SlidingWindowMiner::push`] produces). The
    /// root's count tracks the window size, so even empty transactions
    /// are represented (as root weight) and the multiset stays exactly
    /// recoverable.
    pub fn insert(&mut self, txn: &[ItemId]) {
        debug_assert!(
            txn.windows(2).all(|w| w[0] < w[1]),
            "transaction must be in canonical (sorted, deduped) order"
        );
        self.nodes[0].count += 1;
        let mut node = 0u32;
        for &item in txn {
            let mut child = self.nodes[node as usize].first_child;
            let mut last = NO_NODE;
            while child != NO_NODE && self.nodes[child as usize].item != item {
                last = child;
                child = self.nodes[child as usize].next_sibling;
            }
            node = if child != NO_NODE {
                self.nodes[child as usize].count += 1;
                child
            } else {
                let new = self.alloc(IncNode {
                    item,
                    count: 1,
                    first_child: NO_NODE,
                    next_sibling: NO_NODE,
                });
                if last == NO_NODE {
                    self.nodes[node as usize].first_child = new;
                } else {
                    self.nodes[last as usize].next_sibling = new;
                }
                new
            };
        }
    }

    /// Removes one previously-inserted transaction (same canonical form),
    /// unlinking and recycling any nodes its departure drains to zero.
    ///
    /// Panics if `txn` was never inserted — the sliding window owns the
    /// tree and only removes what it evicts, so a miss is a corrupted
    /// window, not a recoverable condition.
    pub fn remove(&mut self, txn: &[ItemId]) {
        assert!(
            self.nodes[0].count > 0,
            "removed transaction was never inserted (window corrupted)"
        );
        self.nodes[0].count -= 1;
        let mut node = 0u32;
        // (parent, node) of the shallowest node this removal drained.
        let mut first_zero: Option<(u32, u32)> = None;
        for &item in txn {
            let mut child = self.nodes[node as usize].first_child;
            while child != NO_NODE && self.nodes[child as usize].item != item {
                child = self.nodes[child as usize].next_sibling;
            }
            assert!(
                child != NO_NODE && self.nodes[child as usize].count > 0,
                "removed transaction was never inserted (window corrupted)"
            );
            self.nodes[child as usize].count -= 1;
            if self.nodes[child as usize].count == 0 && first_zero.is_none() {
                first_zero = Some((node, child));
            }
            node = child;
        }
        let Some((parent, zero)) = first_zero else {
            return;
        };
        // Everything below the shallowest drained node is also drained:
        // counts are monotone down any edge, and off-path children held
        // count >= 1 before this removal, which a zero parent cannot
        // dominate. The drained region is therefore exactly the remaining
        // path chain — unlink its head, recycle the chain.
        self.unlink_child(parent, zero);
        let mut cur = zero;
        while cur != NO_NODE {
            let next = self.nodes[cur as usize].first_child;
            debug_assert_eq!(self.nodes[cur as usize].count, 0);
            self.nodes[cur as usize].first_child = NO_NODE;
            self.nodes[cur as usize].next_sibling = NO_NODE;
            self.free.push(cur);
            self.live -= 1;
            cur = next;
        }
    }

    fn unlink_child(&mut self, parent: u32, target: u32) {
        let mut child = self.nodes[parent as usize].first_child;
        if child == target {
            self.nodes[parent as usize].first_child = self.nodes[target as usize].next_sibling;
            return;
        }
        while child != NO_NODE {
            let next = self.nodes[child as usize].next_sibling;
            if next == target {
                self.nodes[child as usize].next_sibling = self.nodes[target as usize].next_sibling;
                return;
            }
            child = next;
        }
        unreachable!("target is a child of parent");
    }

    /// Extracts the window as weighted canonical paths into flat
    /// caller-owned storage (`(start, end, weight)` spans over `items`),
    /// the exact shape `FpTree::build` consumes. Each node with
    /// `count > Σ child counts` contributes its root-to-node path once,
    /// weighted by the difference — the transactions that *end* there.
    pub fn collect_paths(&self, items: &mut Vec<ItemId>, spans: &mut Vec<(u32, u32, u64)>) {
        items.clear();
        spans.clear();
        let mut path: Vec<ItemId> = Vec::new();
        let mut stack: Vec<(u32, usize)> = Vec::new();
        let mut root_child_sum = 0u64;
        let mut child = self.nodes[0].first_child;
        while child != NO_NODE {
            root_child_sum += self.nodes[child as usize].count;
            stack.push((child, 0));
            child = self.nodes[child as usize].next_sibling;
        }
        // Empty transactions end at the root: they carry no items but do
        // count toward the window, so they surface as (empty) weighted
        // paths to keep the multiset exactly recoverable.
        debug_assert!(self.nodes[0].count >= root_child_sum);
        let root_weight = self.nodes[0].count - root_child_sum;
        if root_weight > 0 {
            spans.push((0, 0, root_weight));
        }
        while let Some((node, depth)) = stack.pop() {
            path.truncate(depth);
            let n = &self.nodes[node as usize];
            path.push(n.item);
            let mut child_sum = 0u64;
            let mut c = n.first_child;
            while c != NO_NODE {
                child_sum += self.nodes[c as usize].count;
                stack.push((c, depth + 1));
                c = self.nodes[c as usize].next_sibling;
            }
            debug_assert!(n.count >= child_sum, "edge counts must be monotone");
            let weight = n.count - child_sum;
            if weight > 0 {
                let start = items.len() as u32;
                items.extend_from_slice(&path);
                spans.push((start, items.len() as u32, weight));
            }
        }
    }

    /// Expands the tree back into the transaction multiset it encodes
    /// (each path repeated by its weight, canonical item order). Test and
    /// differential-harness support; mining goes through
    /// [`IncrementalFpTree::collect_paths`] instead.
    pub fn to_transactions(&self) -> Vec<Vec<ItemId>> {
        let mut items = Vec::new();
        let mut spans = Vec::new();
        self.collect_paths(&mut items, &mut spans);
        let mut out = Vec::new();
        for (start, end, weight) in spans {
            for _ in 0..weight {
                out.push(items[start as usize..end as usize].to_vec());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut txns: Vec<Vec<ItemId>>) -> Vec<Vec<ItemId>> {
        txns.sort();
        txns
    }

    #[test]
    fn insert_then_extract_roundtrips() {
        let mut tree = IncrementalFpTree::new();
        let txns = vec![vec![0, 1, 2], vec![0, 1], vec![0, 1, 2], vec![3]];
        for t in &txns {
            tree.insert(t);
        }
        assert_eq!(sorted(tree.to_transactions()), sorted(txns));
    }

    #[test]
    fn shared_prefixes_merge() {
        let mut tree = IncrementalFpTree::new();
        tree.insert(&[0, 1, 2]);
        tree.insert(&[0, 1, 3]);
        tree.insert(&[0, 1]);
        // Path 0 -> 1 is shared; only 2 and 3 branch.
        assert_eq!(tree.live_nodes(), 4);
    }

    #[test]
    fn remove_reverses_insert_exactly() {
        let mut tree = IncrementalFpTree::new();
        tree.insert(&[0, 1, 2]);
        tree.insert(&[0, 1]);
        tree.insert(&[0, 3]);
        tree.remove(&[0, 1, 2]);
        assert_eq!(sorted(tree.to_transactions()), vec![vec![0, 1], vec![0, 3]]);
        tree.remove(&[0, 1]);
        tree.remove(&[0, 3]);
        assert_eq!(tree.live_nodes(), 0);
        assert!(tree.to_transactions().is_empty());
    }

    #[test]
    fn drained_chains_are_recycled_not_leaked() {
        let mut tree = IncrementalFpTree::new();
        for _ in 0..100 {
            tree.insert(&[0, 1, 2, 3]);
            tree.remove(&[0, 1, 2, 3]);
        }
        assert_eq!(tree.live_nodes(), 0);
        // The arena never grew past root + one 4-node chain: every churn
        // cycle reused the recycled slots.
        assert!(tree.nodes.len() <= 5, "arena leaked: {}", tree.nodes.len());
    }

    #[test]
    fn partial_drain_keeps_shared_prefix() {
        let mut tree = IncrementalFpTree::new();
        tree.insert(&[0, 1, 2]);
        tree.insert(&[0, 1]);
        // Removing the longer txn drains only node 2.
        tree.remove(&[0, 1, 2]);
        assert_eq!(tree.live_nodes(), 2);
        assert_eq!(tree.to_transactions(), vec![vec![0, 1]]);
    }

    #[test]
    fn empty_transactions_are_tree_noops() {
        let mut tree = IncrementalFpTree::new();
        tree.insert(&[]);
        tree.remove(&[]);
        assert_eq!(tree.live_nodes(), 0);
    }

    #[test]
    fn path_weights_sum_to_window_size() {
        let mut tree = IncrementalFpTree::new();
        let txns: Vec<Vec<ItemId>> = (0..50u32).map(|i| vec![i % 3, 3 + i % 5]).collect();
        for t in &txns {
            let mut t = t.clone();
            t.sort_unstable();
            t.dedup();
            tree.insert(&t);
        }
        let mut items = Vec::new();
        let mut spans = Vec::new();
        tree.collect_paths(&mut items, &mut spans);
        let total: u64 = spans.iter().map(|&(_, _, w)| w).sum();
        assert_eq!(total, 50);
    }

    #[test]
    #[should_panic(expected = "never inserted")]
    fn removing_a_stranger_panics() {
        let mut tree = IncrementalFpTree::new();
        tree.insert(&[0, 1]);
        tree.remove(&[0, 2]);
    }
}
