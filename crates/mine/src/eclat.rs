//! Eclat frequent-itemset mining (Zaki, IEEE TKDE 2000).
//!
//! A second independent baseline: vertical layout (per-item transaction-id
//! lists), depth-first prefix extension by tid-list intersection. Having a
//! third miner with a completely different data layout makes the
//! cross-miner equivalence property tests a strong oracle for all three.
//!
//! Tid-lists are density-adaptive ([`TidSet`]): above one set transaction
//! in [`DENSE_CUTOVER_FACTOR`] they switch to packed `u64` bitset words,
//! where intersection is a word-wise AND + popcount instead of a sorted
//! merge — the classic diffset-era optimization for the dense top of the
//! lattice, while the sparse deep prefixes keep compact sorted lists.

use rayon::prelude::*;

use crate::budget::{BudgetBreach, BudgetGuard, MineError};
use crate::counts::{FrequentItemsets, MinerConfig};
use crate::db::TransactionDb;
use crate::item::{ItemId, Itemset};

/// Representation cutover: a tid-set covering at least `1 /
/// DENSE_CUTOVER_FACTOR` of all transactions is stored dense. At 32, the
/// dense words (`n_txns / 8` bytes) never exceed the sparse list they
/// replace (`4 * count` bytes).
const DENSE_CUTOVER_FACTOR: u64 = 32;

/// Intersection of two sorted tid-lists.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// A transaction-id set with a density-adaptive representation.
#[derive(Debug, Clone)]
enum TidSet {
    /// Sorted tid list (low density).
    Sparse(Vec<u32>),
    /// Packed bitset over the transaction universe, with the set-bit
    /// count cached (popcounted once at construction).
    Dense { words: Vec<u64>, count: u64 },
}

impl TidSet {
    /// Wraps a sorted tid list, densifying above the cutover.
    fn from_sparse(tids: Vec<u32>, n_txns: usize) -> TidSet {
        if !tids.is_empty() && tids.len() as u64 * DENSE_CUTOVER_FACTOR >= n_txns as u64 {
            let mut words = vec![0u64; n_txns.div_ceil(64)];
            for &tid in &tids {
                words[(tid / 64) as usize] |= 1u64 << (tid % 64);
            }
            TidSet::Dense {
                words,
                count: tids.len() as u64,
            }
        } else {
            TidSet::Sparse(tids)
        }
    }

    /// Support count.
    fn len(&self) -> u64 {
        match self {
            TidSet::Sparse(tids) => tids.len() as u64,
            TidSet::Dense { count, .. } => *count,
        }
    }

    /// Set intersection, picking the cheapest strategy per operand pair
    /// and re-deciding the result's representation by density.
    fn intersect(&self, other: &TidSet, n_txns: usize) -> TidSet {
        match (self, other) {
            (TidSet::Sparse(a), TidSet::Sparse(b)) => TidSet::Sparse(intersect(a, b)),
            (TidSet::Dense { words: a, .. }, TidSet::Dense { words: b, .. }) => {
                // Chunked u64×4 AND + popcount (differentially tested
                // against the scalar loop in `crate::simd`).
                let (words, count) = crate::simd::and_popcount(a, b);
                if count * DENSE_CUTOVER_FACTOR >= n_txns as u64 {
                    TidSet::Dense { words, count }
                } else {
                    // The result fell below the cutover: decode the set
                    // bits back into a sorted list so deeper levels pay
                    // sparse-merge costs, not full-universe word scans.
                    let mut tids = Vec::with_capacity(count as usize);
                    for (index, &word) in words.iter().enumerate() {
                        let mut word = word;
                        while word != 0 {
                            tids.push(index as u32 * 64 + word.trailing_zeros());
                            word &= word - 1;
                        }
                    }
                    TidSet::Sparse(tids)
                }
            }
            (TidSet::Sparse(tids), TidSet::Dense { words, .. })
            | (TidSet::Dense { words, .. }, TidSet::Sparse(tids)) => {
                // Probe each sparse tid against the bitset. The result is
                // no larger than the sparse operand, which was already
                // below the cutover — so it stays sparse.
                let out: Vec<u32> = tids
                    .iter()
                    .copied()
                    .filter(|&tid| words[(tid / 64) as usize] & (1u64 << (tid % 64)) != 0)
                    .collect();
                TidSet::Sparse(out)
            }
        }
    }
}

/// Prefix subtrees narrower than this run sequentially: below it the
/// fork bookkeeping (a deque push/pop per split) costs more than the
/// work a thief could take.
const PAR_SPLIT_MIN: usize = 8;

/// Depth-first extension of `prefix` by items from positions `lo..hi`
/// of `tail`.
///
/// In parallel mode a fat position range splits in two via
/// [`rayon::join`] — *inside* the recursion, not only at the top-level
/// singleton fan-out, so one skewed prefix subtree (a fat lattice
/// branch) keeps forking stealable halves instead of serializing a
/// worker. Note the whole `tail` travels to both halves: position `p`'s
/// conditional tail draws from `tail[p + 1..]`, which crosses the split
/// point.
///
/// Determinism: halves emit into their own buffers, merged left-then-
/// right, so output order equals the sequential DFS order at any width;
/// on concurrent failures the lowest-position error wins.
///
/// Budget-aware: checkpoints the guard at every recursion entry (the DFS
/// is the hot loop, so this is where a deadline is noticed) and charges
/// one itemset per emission.
#[allow(clippy::too_many_arguments)]
fn extend(
    prefix: &[ItemId],
    tail: &[(ItemId, TidSet)],
    lo: usize,
    hi: usize,
    n_txns: usize,
    min_count: u64,
    max_len: usize,
    parallel: bool,
    out: &mut Vec<(Itemset, u64)>,
    guard: &BudgetGuard,
) -> Result<(), BudgetBreach> {
    guard.checkpoint()?;
    if parallel && hi - lo >= PAR_SPLIT_MIN {
        let mid = lo + (hi - lo) / 2;
        let run_half = |from: usize, to: usize| {
            let mut half = Vec::new();
            let result = extend(
                prefix, tail, from, to, n_txns, min_count, max_len, parallel, &mut half, guard,
            );
            (result, half)
        };
        let ((left, left_out), (right, right_out)) =
            rayon::join(|| run_half(lo, mid), || run_half(mid, hi));
        left?;
        right?;
        out.extend(left_out);
        out.extend(right_out);
        return Ok(());
    }
    for pos in lo..hi {
        let (item, tids) = &tail[pos];
        let mut itemset: Vec<ItemId> = prefix.to_vec();
        itemset.push(*item);
        guard.charge_itemsets(1)?;
        out.push((Itemset::from_items(itemset.clone()), tids.len()));
        if itemset.len() >= max_len {
            continue;
        }
        // Conditional tail: remaining items intersected with this prefix.
        let mut next_tail: Vec<(ItemId, TidSet)> = Vec::new();
        for (other, other_tids) in &tail[pos + 1..] {
            let joined = tids.intersect(other_tids, n_txns);
            if joined.len() >= min_count {
                next_tail.push((*other, joined));
            }
        }
        if !next_tail.is_empty() {
            let end = next_tail.len();
            extend(
                &itemset, &next_tail, 0, end, n_txns, min_count, max_len, parallel, out, guard,
            )?;
        }
    }
    Ok(())
}

/// Mines all frequent itemsets with the Eclat algorithm.
pub fn eclat(db: &TransactionDb, config: &MinerConfig) -> FrequentItemsets {
    match try_eclat(db, config, &BudgetGuard::unlimited()) {
        Ok(frequent) => frequent,
        // Unlimited guard: only a config error can surface here, matching
        // the panic the infallible signature always had.
        Err(e) => panic!("{e}"),
    }
}

/// [`eclat`] made fault-tolerant: budget breaches come back as
/// [`MineError::Budget`]. In the parallel fan-out each prefix subtree
/// returns its own `Result`; the lowest-position error wins so the
/// reported breach is deterministic.
pub fn try_eclat(
    db: &TransactionDb,
    config: &MinerConfig,
    guard: &BudgetGuard,
) -> Result<FrequentItemsets, MineError> {
    config.validate().map_err(MineError::InvalidConfig)?;
    let min_count = config.min_count(db.len());
    let n_txns = db.len();
    guard.checkpoint_now()?;

    // Vertical layout: tid-list per item, densified above the cutover.
    let mut tidlists: Vec<Vec<u32>> = vec![Vec::new(); db.n_items()];
    for (tid, txn) in db.iter().enumerate() {
        for &item in txn {
            tidlists[item as usize].push(tid as u32);
        }
    }
    let frequent: Vec<(ItemId, TidSet)> = tidlists
        .into_iter()
        .enumerate()
        .filter(|(_, tids)| tids.len() as u64 >= min_count)
        .map(|(item, tids)| (item as ItemId, TidSet::from_sparse(tids, n_txns)))
        .collect();

    let out: Vec<(Itemset, u64)> = if config.parallel {
        let chunks: Vec<Result<Vec<(Itemset, u64)>, BudgetBreach>> = (0..frequent.len())
            .into_par_iter()
            .map(|pos| {
                let (item, tids) = &frequent[pos];
                let mut local = Vec::new();
                guard.charge_itemsets(1)?;
                local.push((Itemset::singleton(*item), tids.len()));
                if config.max_len > 1 {
                    let mut tail: Vec<(ItemId, TidSet)> = Vec::new();
                    for (other, other_tids) in &frequent[pos + 1..] {
                        let joined = tids.intersect(other_tids, n_txns);
                        if joined.len() >= min_count {
                            tail.push((*other, joined));
                        }
                    }
                    if !tail.is_empty() {
                        let end = tail.len();
                        extend(
                            &[*item],
                            &tail,
                            0,
                            end,
                            n_txns,
                            min_count,
                            config.max_len,
                            true,
                            &mut local,
                            guard,
                        )?;
                    }
                }
                Ok(local)
            })
            .collect();
        let mut out = Vec::new();
        for chunk in chunks {
            out.extend(chunk?);
        }
        out
    } else {
        let mut out = Vec::new();
        let end = frequent.len();
        extend(
            &[],
            &frequent,
            0,
            end,
            n_txns,
            min_count,
            config.max_len,
            false,
            &mut out,
            guard,
        )?;
        out
    };

    Ok(FrequentItemsets::new(out, db.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use crate::fpgrowth::fpgrowth;

    fn textbook_db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 1],
            vec![1, 2, 3],
            vec![0, 2, 3, 4],
            vec![0, 3, 4],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0],
            vec![0, 1, 2],
            vec![0, 1, 3],
            vec![1, 2, 4],
        ])
    }

    #[test]
    fn intersect_sorted_lists() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 5, 9]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect(&[4], &[4]), vec![4]);
    }

    /// Every representation pairing (sparse/sparse, dense/dense, mixed)
    /// must agree with the sorted-merge reference on the same sets.
    #[test]
    fn tidset_intersections_match_sparse_reference() {
        // 128 transactions; a = multiples of 2, b = multiples of 3.
        let n_txns = 128usize;
        let a: Vec<u32> = (0..n_txns as u32).filter(|t| t % 2 == 0).collect();
        let b: Vec<u32> = (0..n_txns as u32).filter(|t| t % 3 == 0).collect();
        let expected = intersect(&a, &b);

        let sparse_a = TidSet::Sparse(a.clone());
        let sparse_b = TidSet::Sparse(b.clone());
        let dense_a = TidSet::from_sparse(a.clone(), n_txns);
        let dense_b = TidSet::from_sparse(b.clone(), n_txns);
        assert!(matches!(dense_a, TidSet::Dense { .. }), "a is dense");
        assert!(matches!(dense_b, TidSet::Dense { .. }), "b is dense");

        for (x, y) in [
            (&sparse_a, &sparse_b),
            (&dense_a, &dense_b),
            (&sparse_a, &dense_b),
            (&dense_a, &sparse_b),
        ] {
            let joined = x.intersect(y, n_txns);
            assert_eq!(joined.len(), expected.len() as u64);
            let decoded: Vec<u32> = match joined {
                TidSet::Sparse(tids) => tids,
                TidSet::Dense { words, .. } => {
                    let mut tids = Vec::new();
                    for (index, &word) in words.iter().enumerate() {
                        let mut word = word;
                        while word != 0 {
                            tids.push(index as u32 * 64 + word.trailing_zeros());
                            word &= word - 1;
                        }
                    }
                    tids
                }
            };
            assert_eq!(decoded, expected);
        }
    }

    /// A dense-by-construction set must sparsify once an intersection
    /// drops it below the cutover, and never lose counts either way.
    #[test]
    fn dense_results_sparsify_below_cutover() {
        let n_txns = 4096usize;
        let all: Vec<u32> = (0..n_txns as u32).collect();
        let few: Vec<u32> = (0..n_txns as u32).step_by(512).collect();
        let dense = TidSet::from_sparse(all, n_txns);
        let dense_few = {
            // Force a dense/dense intersection whose result is tiny.
            let mut words = vec![0u64; n_txns.div_ceil(64)];
            for &tid in &few {
                words[(tid / 64) as usize] |= 1u64 << (tid % 64);
            }
            TidSet::Dense {
                words,
                count: few.len() as u64,
            }
        };
        let joined = dense.intersect(&dense_few, n_txns);
        assert_eq!(joined.len(), few.len() as u64);
        assert!(
            matches!(joined, TidSet::Sparse(ref tids) if *tids == few),
            "below-cutover result must decode to a sorted sparse list"
        );
    }

    #[test]
    fn matches_other_miners() {
        let db = textbook_db();
        for min_support in [0.1, 0.2, 0.4, 0.7] {
            for parallel in [false, true] {
                let config = MinerConfig {
                    min_support,
                    max_len: 5,
                    parallel,
                };
                let e = eclat(&db, &config);
                let f = fpgrowth(&db, &config);
                let a = apriori(&db, &config);
                assert_eq!(e.as_slice(), f.as_slice());
                assert_eq!(e.as_slice(), a.as_slice());
            }
        }
    }

    #[test]
    fn counts_match_brute_force() {
        let db = textbook_db();
        let fi = eclat(&db, &MinerConfig::with_min_support(0.2));
        for (set, count) in fi.iter() {
            assert_eq!(*count, db.support_count(set));
        }
    }

    #[test]
    fn max_len_respected() {
        let db = textbook_db();
        let config = MinerConfig {
            min_support: 0.1,
            max_len: 3,
            parallel: false,
        };
        let fi = eclat(&db, &config);
        assert!(fi.iter().all(|(s, _)| s.len() <= 3));
        assert!(fi.iter().any(|(s, _)| s.len() == 3));
    }
}
