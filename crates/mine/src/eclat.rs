//! Eclat frequent-itemset mining (Zaki, IEEE TKDE 2000).
//!
//! A second independent baseline: vertical layout (per-item transaction-id
//! lists), depth-first prefix extension by tid-list intersection. Having a
//! third miner with a completely different data layout makes the
//! cross-miner equivalence property tests a strong oracle for all three.

use rayon::prelude::*;

use crate::budget::{BudgetBreach, BudgetGuard, MineError};
use crate::counts::{FrequentItemsets, MinerConfig};
use crate::db::TransactionDb;
use crate::item::{ItemId, Itemset};

/// Intersection of two sorted tid-lists.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Depth-first extension of `prefix` by items from `tail`.
///
/// Budget-aware: checkpoints the guard at every recursion entry (the DFS
/// is the hot loop, so this is where a deadline is noticed) and charges
/// one itemset per emission.
fn extend(
    prefix: &[ItemId],
    tail: &[(ItemId, Vec<u32>)],
    min_count: u64,
    max_len: usize,
    out: &mut Vec<(Itemset, u64)>,
    guard: &BudgetGuard,
) -> Result<(), BudgetBreach> {
    guard.checkpoint()?;
    for (pos, (item, tids)) in tail.iter().enumerate() {
        let mut itemset: Vec<ItemId> = prefix.to_vec();
        itemset.push(*item);
        guard.charge_itemsets(1)?;
        out.push((Itemset::from_items(itemset.clone()), tids.len() as u64));
        if itemset.len() >= max_len {
            continue;
        }
        // Conditional tail: remaining items intersected with this prefix.
        let mut next_tail: Vec<(ItemId, Vec<u32>)> = Vec::new();
        for (other, other_tids) in &tail[pos + 1..] {
            let joined = intersect(tids, other_tids);
            if joined.len() as u64 >= min_count {
                next_tail.push((*other, joined));
            }
        }
        if !next_tail.is_empty() {
            extend(&itemset, &next_tail, min_count, max_len, out, guard)?;
        }
    }
    Ok(())
}

/// Mines all frequent itemsets with the Eclat algorithm.
pub fn eclat(db: &TransactionDb, config: &MinerConfig) -> FrequentItemsets {
    match try_eclat(db, config, &BudgetGuard::unlimited()) {
        Ok(frequent) => frequent,
        // Unlimited guard: only a config error can surface here, matching
        // the panic the infallible signature always had.
        Err(e) => panic!("{e}"),
    }
}

/// [`eclat`] made fault-tolerant: budget breaches come back as
/// [`MineError::Budget`]. In the parallel fan-out each prefix subtree
/// returns its own `Result`; the lowest-position error wins so the
/// reported breach is deterministic.
pub fn try_eclat(
    db: &TransactionDb,
    config: &MinerConfig,
    guard: &BudgetGuard,
) -> Result<FrequentItemsets, MineError> {
    config.validate().map_err(MineError::InvalidConfig)?;
    let min_count = config.min_count(db.len());
    guard.checkpoint_now()?;

    // Vertical layout: tid-list per item.
    let mut tidlists: Vec<Vec<u32>> = vec![Vec::new(); db.n_items()];
    for (tid, txn) in db.iter().enumerate() {
        for &item in txn {
            tidlists[item as usize].push(tid as u32);
        }
    }
    let frequent: Vec<(ItemId, Vec<u32>)> = tidlists
        .into_iter()
        .enumerate()
        .filter(|(_, tids)| tids.len() as u64 >= min_count)
        .map(|(item, tids)| (item as ItemId, tids))
        .collect();

    let out: Vec<(Itemset, u64)> = if config.parallel {
        let chunks: Vec<Result<Vec<(Itemset, u64)>, BudgetBreach>> = (0..frequent.len())
            .into_par_iter()
            .map(|pos| {
                let (item, tids) = &frequent[pos];
                let mut local = Vec::new();
                guard.charge_itemsets(1)?;
                local.push((Itemset::singleton(*item), tids.len() as u64));
                if config.max_len > 1 {
                    let mut tail: Vec<(ItemId, Vec<u32>)> = Vec::new();
                    for (other, other_tids) in &frequent[pos + 1..] {
                        let joined = intersect(tids, other_tids);
                        if joined.len() as u64 >= min_count {
                            tail.push((*other, joined));
                        }
                    }
                    if !tail.is_empty() {
                        extend(
                            &[*item],
                            &tail,
                            min_count,
                            config.max_len,
                            &mut local,
                            guard,
                        )?;
                    }
                }
                Ok(local)
            })
            .collect();
        let mut out = Vec::new();
        for chunk in chunks {
            out.extend(chunk?);
        }
        out
    } else {
        let mut out = Vec::new();
        extend(&[], &frequent, min_count, config.max_len, &mut out, guard)?;
        out
    };

    Ok(FrequentItemsets::new(out, db.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use crate::fpgrowth::fpgrowth;

    fn textbook_db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 1],
            vec![1, 2, 3],
            vec![0, 2, 3, 4],
            vec![0, 3, 4],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0],
            vec![0, 1, 2],
            vec![0, 1, 3],
            vec![1, 2, 4],
        ])
    }

    #[test]
    fn intersect_sorted_lists() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 5, 9]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect(&[4], &[4]), vec![4]);
    }

    #[test]
    fn matches_other_miners() {
        let db = textbook_db();
        for min_support in [0.1, 0.2, 0.4, 0.7] {
            for parallel in [false, true] {
                let config = MinerConfig {
                    min_support,
                    max_len: 5,
                    parallel,
                };
                let e = eclat(&db, &config);
                let f = fpgrowth(&db, &config);
                let a = apriori(&db, &config);
                assert_eq!(e.as_slice(), f.as_slice());
                assert_eq!(e.as_slice(), a.as_slice());
            }
        }
    }

    #[test]
    fn counts_match_brute_force() {
        let db = textbook_db();
        let fi = eclat(&db, &MinerConfig::with_min_support(0.2));
        for (set, count) in fi.iter() {
            assert_eq!(*count, db.support_count(set));
        }
    }

    #[test]
    fn max_len_respected() {
        let db = textbook_db();
        let config = MinerConfig {
            min_support: 0.1,
            max_len: 3,
            parallel: false,
        };
        let fi = eclat(&db, &config);
        assert!(fi.iter().all(|(s, _)| s.len() <= 3));
        assert!(fi.iter().any(|(s, _)| s.len() == 3));
    }
}
