//! SIMD-width chunked bitset kernels for the dense tid-set hot path.
//!
//! Eclat's dense intersections are word-wise AND + popcount over packed
//! `u64` bitsets. The scalar loop leaves instruction-level parallelism
//! on the table: one AND, one `popcnt`, and one dependent accumulator
//! add per iteration. [`and_popcount`] processes four words per
//! iteration with four independent popcount accumulators, which the
//! compiler turns into wide vector ANDs and keeps the popcount chains
//! independent — the same unroll-by-register-width trick explicit
//! `std::simd` code would express, without the nightly dependency.
//!
//! [`and_popcount_scalar`] is the obviously-correct reference the
//! differential property in `crates/check/tests/scheduler.rs` compares
//! against, including tail lengths not divisible by the chunk width.

/// Words processed per unrolled iteration.
const CHUNK: usize = 4;

/// Scalar reference: word-wise AND with a running popcount.
///
/// Operands may differ in length; the intersection is computed over the
/// common prefix (a missing word is an all-zero word, and `x & 0 == 0`,
/// so truncation loses nothing).
pub fn and_popcount_scalar(a: &[u64], b: &[u64]) -> (Vec<u64>, u64) {
    let n = a.len().min(b.len());
    let mut words = Vec::with_capacity(n);
    let mut count = 0u64;
    for (x, y) in a[..n].iter().zip(&b[..n]) {
        let w = x & y;
        count += u64::from(w.count_ones());
        words.push(w);
    }
    (words, count)
}

/// Chunked AND + popcount: u64×4 unrolled with independent accumulators.
///
/// Byte-identical output to [`and_popcount_scalar`] on every input —
/// property-tested, including tails of 1–3 words.
pub fn and_popcount(a: &[u64], b: &[u64]) -> (Vec<u64>, u64) {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut words = vec![0u64; n];
    let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
    let mut out = words.chunks_exact_mut(CHUNK);
    let mut xs = a.chunks_exact(CHUNK);
    let mut ys = b.chunks_exact(CHUNK);
    for ((o, x), y) in (&mut out).zip(&mut xs).zip(&mut ys) {
        let w0 = x[0] & y[0];
        let w1 = x[1] & y[1];
        let w2 = x[2] & y[2];
        let w3 = x[3] & y[3];
        o[0] = w0;
        o[1] = w1;
        o[2] = w2;
        o[3] = w3;
        c0 += u64::from(w0.count_ones());
        c1 += u64::from(w1.count_ones());
        c2 += u64::from(w2.count_ones());
        c3 += u64::from(w3.count_ones());
    }
    for ((o, x), y) in out
        .into_remainder()
        .iter_mut()
        .zip(xs.remainder())
        .zip(ys.remainder())
    {
        let w = x & y;
        *o = w;
        c0 += u64::from(w.count_ones());
    }
    (words, c0 + c1 + c2 + c3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, salt: u64) -> Vec<u64> {
        (0..len as u64)
            .map(|i| {
                (i ^ salt)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left((i % 63) as u32)
            })
            .collect()
    }

    #[test]
    fn chunked_matches_scalar_at_every_tail_length() {
        for len in 0..=19 {
            let a = pattern(len, 0xa5a5);
            let b = pattern(len, 0x5a5a);
            assert_eq!(
                and_popcount(&a, &b),
                and_popcount_scalar(&a, &b),
                "len {len}"
            );
        }
    }

    #[test]
    fn mismatched_lengths_truncate_to_common_prefix() {
        let a = pattern(13, 1);
        let b = pattern(7, 2);
        let (words, count) = and_popcount(&a, &b);
        assert_eq!(words.len(), 7);
        assert_eq!((words, count), and_popcount_scalar(&a, &b));
    }

    #[test]
    fn empty_inputs_yield_empty() {
        assert_eq!(and_popcount(&[], &[]), (Vec::new(), 0));
        assert_eq!(and_popcount(&[1, 2, 3], &[]), (Vec::new(), 0));
    }
}
