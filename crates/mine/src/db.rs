//! Transaction database: one itemset per job record.

use crate::item::{is_sorted_subset, ItemId, Itemset};

/// An immutable database of transactions over a dense item universe.
///
/// Transactions are stored as sorted, deduplicated `ItemId` slices packed
/// into one flat buffer (offsets + data) so that scans are cache-friendly
/// and the database can be shared across rayon workers without cloning.
#[derive(Debug, Clone, Default)]
pub struct TransactionDb {
    offsets: Vec<u32>,
    items: Vec<ItemId>,
    n_items: usize,
}

impl TransactionDb {
    /// Builds a database from per-transaction item lists.
    ///
    /// Each transaction is sorted and deduplicated; `n_items` is inferred as
    /// `max(item)+1` unless a larger universe is given via
    /// [`TransactionDb::with_universe`].
    pub fn from_transactions<I, T>(transactions: I) -> TransactionDb
    where
        I: IntoIterator<Item = T>,
        T: IntoIterator<Item = ItemId>,
    {
        let mut offsets = vec![0u32];
        let mut items: Vec<ItemId> = Vec::new();
        let mut max_item: Option<ItemId> = None;
        for txn in transactions {
            let mut t: Vec<ItemId> = txn.into_iter().collect();
            t.sort_unstable();
            t.dedup();
            if let Some(&last) = t.last() {
                max_item = Some(max_item.map_or(last, |m| m.max(last)));
            }
            items.extend_from_slice(&t);
            offsets.push(items.len() as u32);
        }
        TransactionDb {
            offsets,
            items,
            n_items: max_item.map_or(0, |m| m as usize + 1),
        }
    }

    /// Overrides the item-universe size (ids in `0..n_items`).
    pub fn with_universe(mut self, n_items: usize) -> TransactionDb {
        assert!(n_items >= self.n_items, "universe smaller than max item id");
        self.n_items = n_items;
        self
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the database has no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the item universe (`ids < n_items`).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The sorted item slice of transaction `idx`.
    pub fn transaction(&self, idx: usize) -> &[ItemId] {
        let start = self.offsets[idx] as usize;
        let end = self.offsets[idx + 1] as usize;
        &self.items[start..end]
    }

    /// Iterates all transactions as sorted slices.
    pub fn iter(&self) -> impl Iterator<Item = &[ItemId]> + Clone + '_ {
        (0..self.len()).map(move |i| self.transaction(i))
    }

    /// Per-item support counts over the whole database.
    pub fn item_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.n_items];
        for &item in &self.items {
            counts[item as usize] += 1;
        }
        counts
    }

    /// Exact support count of an arbitrary itemset (full scan).
    ///
    /// Only used by tests and small verification paths; the miners never
    /// call this in their hot loops.
    pub fn support_count(&self, itemset: &Itemset) -> u64 {
        self.iter()
            .filter(|txn| is_sorted_subset(itemset.items(), txn))
            .count() as u64
    }

    /// Support fraction of an itemset in `[0, 1]`.
    pub fn support(&self, itemset: &Itemset) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.support_count(itemset) as f64 / self.len() as f64
        }
    }

    /// Total number of stored item occurrences (sum of transaction lengths).
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// Mean transaction length.
    pub fn mean_transaction_len(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.items.len() as f64 / self.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 1, 2],
            vec![1, 2],
            vec![0, 2],
            vec![2, 2, 0], // dup + unsorted on purpose
        ])
    }

    #[test]
    fn construction_canonicalizes() {
        let d = db();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_items(), 3);
        assert_eq!(d.transaction(3), &[0, 2]);
        assert_eq!(d.total_items(), 9);
    }

    #[test]
    fn item_counts() {
        let d = db();
        assert_eq!(d.item_counts(), vec![3, 2, 4]);
    }

    #[test]
    fn support_counting() {
        let d = db();
        assert_eq!(d.support_count(&Itemset::from_items([0, 2])), 3);
        assert_eq!(d.support_count(&Itemset::from_items([1])), 2);
        assert_eq!(d.support_count(&Itemset::from_items([0, 1, 2])), 1);
        assert_eq!(d.support_count(&Itemset::empty()), 4);
        assert!((d.support(&Itemset::from_items([0, 2])) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_db() {
        let d = TransactionDb::from_transactions(Vec::<Vec<ItemId>>::new());
        assert!(d.is_empty());
        assert_eq!(d.support(&Itemset::singleton(0)), 0.0);
        assert_eq!(d.mean_transaction_len(), 0.0);
    }

    #[test]
    fn with_universe_expands() {
        let d = db().with_universe(10);
        assert_eq!(d.n_items(), 10);
        assert_eq!(d.item_counts().len(), 10);
    }

    #[test]
    #[should_panic(expected = "universe smaller")]
    fn with_universe_rejects_shrink() {
        let _ = db().with_universe(1);
    }
}
