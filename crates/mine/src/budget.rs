//! Resource budgets and cooperative cancellation for the miners.
//!
//! The paper's workflow is a one-shot offline analysis, but behind a
//! service a pathological low-support configuration lets itemset
//! enumeration blow past any memory or time bound (Fast Dimensional
//! Analysis bounds mining work with adaptive support thresholds for
//! exactly this reason). This module provides the primitives the
//! fault-tolerant pipeline entry points build on:
//!
//! * [`ExecBudget`] — declarative caps: mined itemsets, estimated FP-tree
//!   arena bytes, and a wall-clock deadline;
//! * [`CancelToken`] — a shared flag + deadline the miner recursions poll
//!   cooperatively (an expired deadline and an explicit [`CancelToken::cancel`]
//!   look the same to the mining loop);
//! * [`BudgetGuard`] — one attempt's runtime state: atomic itemset/tree
//!   counters bound to a token. Attempts of a degradation ladder each get
//!   a fresh guard ([`BudgetGuard::renew`]) sharing the run-wide token, so
//!   retries reset the counters but never win back spent wall-clock time;
//! * [`BudgetBreach`] / [`MineError`] — what a tripped budget or a
//!   poisoned worker turns into instead of an abort.
//!
//! Checks are designed to stay off the hot path's critical ns: counter
//! charges are single `fetch_add`s, and the clock is only read every
//! [`CHECK_STRIDE`] checkpoints.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many cooperative checkpoints pass between wall-clock reads. The
/// recursions checkpoint at least once per conditional tree / DFS node,
/// so a stride of 64 bounds deadline-detection latency to well under a
/// millisecond of mining work while keeping `Instant::now` off the hot
/// path.
const CHECK_STRIDE: u64 = 64;

/// Declarative resource caps for one pipeline run. `None` everywhere
/// (the default) means unlimited — the guard then never reads the clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecBudget {
    /// Maximum number of itemsets a miner may emit before tripping.
    pub max_itemsets: Option<u64>,
    /// Maximum estimated FP-tree arena bytes (cumulative over all trees
    /// built during the attempt — an upper bound on peak tree memory).
    pub max_tree_bytes: Option<u64>,
    /// Wall-clock deadline for the whole run (all ladder attempts share
    /// it: retrying never wins back time already spent).
    pub deadline: Option<Duration>,
    /// Deterministic fault injection for the chaos harness: panic inside
    /// the mining recursion once this many itemsets have been emitted,
    /// simulating a poisoned worker. Never set outside tests.
    pub panic_after_emits: Option<u64>,
}

impl ExecBudget {
    /// No caps at all (same as `default`).
    pub fn unlimited() -> ExecBudget {
        ExecBudget::default()
    }

    /// Whether every cap is absent.
    pub fn is_unlimited(&self) -> bool {
        self.max_itemsets.is_none()
            && self.max_tree_bytes.is_none()
            && self.deadline.is_none()
            && self.panic_after_emits.is_none()
    }
}

/// Which budget cap a mining attempt ran into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetBreach {
    /// The itemset cap tripped.
    Itemsets {
        /// Itemsets emitted when the cap tripped.
        emitted: u64,
        /// The configured cap.
        cap: u64,
    },
    /// The estimated FP-tree memory cap tripped.
    TreeMemory {
        /// Estimated cumulative tree bytes when the cap tripped.
        estimated: u64,
        /// The configured cap.
        cap: u64,
    },
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured deadline.
        budget: Duration,
    },
    /// The run was cancelled via [`CancelToken::cancel`].
    Cancelled,
}

impl std::fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetBreach::Itemsets { emitted, cap } => {
                write!(f, "itemset budget exceeded ({emitted} emitted, cap {cap})")
            }
            BudgetBreach::TreeMemory { estimated, cap } => write!(
                f,
                "estimated tree memory exceeded ({estimated} bytes, cap {cap})"
            ),
            BudgetBreach::Deadline { budget } => {
                write!(f, "deadline exceeded ({budget:?} wall-clock budget)")
            }
            BudgetBreach::Cancelled => write!(f, "run cancelled"),
        }
    }
}

/// A typed mining failure: what [`crate::Algorithm::try_mine_with`] and
/// the `try_*` miner entry points return instead of panicking/aborting.
#[derive(Debug, Clone, PartialEq)]
pub enum MineError {
    /// The [`crate::MinerConfig`] failed validation.
    InvalidConfig(String),
    /// A resource budget tripped mid-mine.
    Budget(BudgetBreach),
    /// A parallel worker panicked; the panic was contained per-rank.
    WorkerPanic {
        /// Rendered panic payload (best effort).
        message: String,
    },
}

impl std::fmt::Display for MineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MineError::InvalidConfig(msg) => write!(f, "invalid miner config: {msg}"),
            MineError::Budget(breach) => write!(f, "{breach}"),
            MineError::WorkerPanic { message } => {
                write!(f, "mining worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for MineError {}

impl From<BudgetBreach> for MineError {
    fn from(breach: BudgetBreach) -> MineError {
        MineError::Budget(breach)
    }
}

#[derive(Debug)]
struct TokenState {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cooperative-cancellation handle. Clones observe the same
/// flag; the miner recursions poll it via their [`BudgetGuard`].
#[derive(Debug, Clone)]
pub struct CancelToken {
    state: Arc<TokenState>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token with no deadline; trips only on [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken {
            state: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally trips once `budget` wall-clock time has
    /// elapsed from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            state: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            }),
        }
    }

    /// Requests cancellation; every clone observes it at its next poll.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the flag is set (does not consult the deadline).
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::Relaxed)
    }

    /// Polls flag + deadline. Reading the clock is the caller's cost;
    /// [`BudgetGuard::checkpoint`] strides these calls.
    fn check(&self, budget: Duration) -> Result<(), BudgetBreach> {
        if self.is_cancelled() {
            return Err(BudgetBreach::Cancelled);
        }
        if let Some(deadline) = self.state.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetBreach::Deadline { budget });
            }
        }
        Ok(())
    }
}

/// One mining attempt's live budget state. Shared by reference across
/// rayon workers (all counters are atomic).
#[derive(Debug)]
pub struct BudgetGuard {
    token: CancelToken,
    /// The declared deadline, echoed into `Deadline` breaches.
    deadline_budget: Duration,
    has_deadline: bool,
    max_itemsets: Option<u64>,
    max_tree_bytes: Option<u64>,
    panic_after_emits: Option<u64>,
    emitted: AtomicU64,
    tree_bytes: AtomicU64,
}

thread_local! {
    /// Checkpoint counter for clock-read striding. Thread-local rather
    /// than a field: under the work-stealing pool every worker in a
    /// steal tree checkpoints against the same shared guard, and a
    /// shared atomic counter would bounce its cache line between cores
    /// on every recursion step. Per-thread counting preserves the
    /// invariant that matters — each thread reads the clock at most once
    /// per [`CHECK_STRIDE`] of its own checkpoints, starting with its
    /// first.
    static TICKS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

impl Default for BudgetGuard {
    fn default() -> BudgetGuard {
        BudgetGuard::unlimited()
    }
}

impl BudgetGuard {
    /// A guard for one attempt of `budget`, minting a fresh token (and
    /// deadline) now.
    pub fn new(budget: &ExecBudget) -> BudgetGuard {
        let token = match budget.deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        BudgetGuard::with_token(budget, token)
    }

    /// A guard polling an existing `token` — the degradation ladder's
    /// entry point: the token (and its deadline) is minted once per run,
    /// the counters once per attempt.
    pub fn with_token(budget: &ExecBudget, token: CancelToken) -> BudgetGuard {
        BudgetGuard {
            token,
            deadline_budget: budget.deadline.unwrap_or(Duration::ZERO),
            has_deadline: budget.deadline.is_some(),
            max_itemsets: budget.max_itemsets,
            max_tree_bytes: budget.max_tree_bytes,
            panic_after_emits: budget.panic_after_emits,
            emitted: AtomicU64::new(0),
            tree_bytes: AtomicU64::new(0),
        }
    }

    /// A guard that never trips (all checks reduce to `None` branches).
    pub fn unlimited() -> BudgetGuard {
        BudgetGuard::with_token(&ExecBudget::unlimited(), CancelToken::new())
    }

    /// Fresh counters for a retry, sharing the run-wide token/deadline.
    pub fn renew(&self, budget: &ExecBudget) -> BudgetGuard {
        BudgetGuard::with_token(budget, self.token.clone())
    }

    /// The token this guard polls (clone it to cancel from outside).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Itemsets emitted so far in this attempt.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Cooperative poll: cancellation flag always, wall clock every
    /// [`CHECK_STRIDE`] calls. Call once per recursion step.
    pub fn checkpoint(&self) -> Result<(), BudgetBreach> {
        if self.token.is_cancelled() {
            return Err(BudgetBreach::Cancelled);
        }
        if !self.has_deadline {
            return Ok(());
        }
        let tick = TICKS.with(|t| {
            let tick = t.get();
            t.set(tick.wrapping_add(1));
            tick
        });
        if tick.is_multiple_of(CHECK_STRIDE) {
            self.token.check(self.deadline_budget)?;
        }
        Ok(())
    }

    /// Unstrided poll (always reads the clock when a deadline is set).
    /// For coarse-grained call sites — e.g. once per Apriori level —
    /// where striding would delay detection by whole levels.
    pub fn checkpoint_now(&self) -> Result<(), BudgetBreach> {
        if self.token.is_cancelled() {
            return Err(BudgetBreach::Cancelled);
        }
        if self.has_deadline {
            self.token.check(self.deadline_budget)?;
        }
        Ok(())
    }

    /// Charges `n` emitted itemsets against the cap.
    pub fn charge_itemsets(&self, n: u64) -> Result<(), BudgetBreach> {
        if self.max_itemsets.is_none() && self.panic_after_emits.is_none() {
            return Ok(());
        }
        let emitted = self.emitted.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(at) = self.panic_after_emits {
            // Fault injection (chaos harness): simulate a worker poisoned
            // mid-recursion. Trips at most once per attempt.
            if emitted >= at && emitted - n < at {
                panic!("injected worker panic after {at} itemsets");
            }
        }
        if let Some(cap) = self.max_itemsets {
            if emitted > cap {
                return Err(BudgetBreach::Itemsets { emitted, cap });
            }
        }
        Ok(())
    }

    /// Charges an FP-tree's estimated arena footprint against the cap.
    pub fn charge_tree_bytes(&self, bytes: u64) -> Result<(), BudgetBreach> {
        let Some(cap) = self.max_tree_bytes else {
            return Ok(());
        };
        let estimated = self.tree_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if estimated > cap {
            return Err(BudgetBreach::TreeMemory { estimated, cap });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let guard = BudgetGuard::unlimited();
        for _ in 0..1000 {
            guard.checkpoint().unwrap();
            guard.charge_itemsets(1_000_000).unwrap();
            guard.charge_tree_bytes(u64::MAX / 4).unwrap();
        }
        // The itemset counter is not even maintained without a cap.
        assert_eq!(guard.emitted(), 0);
    }

    #[test]
    fn itemset_cap_trips_past_cap_not_at_it() {
        let budget = ExecBudget {
            max_itemsets: Some(10),
            ..ExecBudget::default()
        };
        let guard = BudgetGuard::new(&budget);
        guard.charge_itemsets(10).unwrap();
        let err = guard.charge_itemsets(1).unwrap_err();
        assert_eq!(
            err,
            BudgetBreach::Itemsets {
                emitted: 11,
                cap: 10
            }
        );
    }

    #[test]
    fn tree_cap_is_cumulative() {
        let budget = ExecBudget {
            max_tree_bytes: Some(100),
            ..ExecBudget::default()
        };
        let guard = BudgetGuard::new(&budget);
        guard.charge_tree_bytes(60).unwrap();
        assert!(matches!(
            guard.charge_tree_bytes(60),
            Err(BudgetBreach::TreeMemory {
                estimated: 120,
                cap: 100
            })
        ));
    }

    #[test]
    fn zero_deadline_trips_on_first_strided_check() {
        let budget = ExecBudget {
            deadline: Some(Duration::ZERO),
            ..ExecBudget::default()
        };
        let guard = BudgetGuard::new(&budget);
        // Tick 0 always reads the clock.
        assert!(matches!(
            guard.checkpoint(),
            Err(BudgetBreach::Deadline { .. })
        ));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let budget = ExecBudget {
            deadline: Some(Duration::from_secs(3600)),
            ..ExecBudget::default()
        };
        let guard = BudgetGuard::new(&budget);
        for _ in 0..500 {
            guard.checkpoint().unwrap();
        }
    }

    #[test]
    fn cancel_observed_by_all_clones_immediately() {
        let budget = ExecBudget::unlimited();
        let guard = BudgetGuard::new(&budget);
        let token = guard.token().clone();
        std::thread::scope(|scope| {
            scope.spawn(move || token.cancel());
        });
        assert_eq!(guard.checkpoint(), Err(BudgetBreach::Cancelled));
    }

    #[test]
    fn renew_resets_counters_but_keeps_the_token() {
        let budget = ExecBudget {
            max_itemsets: Some(5),
            ..ExecBudget::default()
        };
        let first = BudgetGuard::new(&budget);
        first.charge_itemsets(6).unwrap_err();
        let second = first.renew(&budget);
        assert_eq!(second.emitted(), 0);
        second.charge_itemsets(5).unwrap();
        // Cancellation crosses renewals: the token is shared.
        first.token().cancel();
        assert_eq!(second.checkpoint(), Err(BudgetBreach::Cancelled));
    }

    #[test]
    fn injected_panic_fires_exactly_once_at_threshold() {
        let budget = ExecBudget {
            panic_after_emits: Some(3),
            ..ExecBudget::default()
        };
        let guard = BudgetGuard::new(&budget);
        guard.charge_itemsets(2).unwrap();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            guard.charge_itemsets(2).unwrap();
        }));
        assert!(panicked.is_err());
        // Past the threshold the injection stays quiet.
        guard.charge_itemsets(10).unwrap();
    }

    #[test]
    fn breach_messages_render() {
        let text = format!(
            "{} | {} | {} | {}",
            BudgetBreach::Itemsets {
                emitted: 11,
                cap: 10
            },
            BudgetBreach::TreeMemory {
                estimated: 200,
                cap: 100
            },
            BudgetBreach::Deadline {
                budget: Duration::from_millis(1)
            },
            BudgetBreach::Cancelled,
        );
        assert!(text.contains("itemset budget exceeded (11 emitted, cap 10)"));
        assert!(text.contains("estimated tree memory exceeded (200 bytes, cap 100)"));
        assert!(text.contains("deadline exceeded"));
        assert!(text.contains("cancelled"));
        let err: MineError = BudgetBreach::Cancelled.into();
        assert!(err.to_string().contains("cancelled"));
    }

    #[test]
    fn unlimited_budget_reports_itself() {
        assert!(ExecBudget::unlimited().is_unlimited());
        assert!(!ExecBudget {
            max_itemsets: Some(1),
            ..ExecBudget::default()
        }
        .is_unlimited());
    }
}
