//! Items, itemsets, and the item catalog.
//!
//! Items are interned to dense `u32` ids before mining so hot loops compare
//! integers, never strings. An [`Itemset`] is a canonical (sorted, deduped)
//! set of item ids; canonical form makes itemsets usable as hash keys and
//! makes subset tests a linear merge.

use std::collections::HashMap;
use std::fmt;

/// A dense item identifier assigned by [`ItemCatalog`].
pub type ItemId = u32;

/// A canonical (strictly increasing) set of item ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Itemset(Vec<ItemId>);

impl Itemset {
    /// Creates an empty itemset.
    pub fn empty() -> Itemset {
        Itemset(Vec::new())
    }

    /// Creates an itemset from arbitrary ids (sorted and deduped here).
    pub fn from_items<I: IntoIterator<Item = ItemId>>(items: I) -> Itemset {
        let mut v: Vec<ItemId> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Itemset(v)
    }

    /// Creates an itemset from a vector already in strictly increasing
    /// order. Panics in debug builds if the invariant does not hold.
    pub fn from_sorted(items: Vec<ItemId>) -> Itemset {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
        Itemset(items)
    }

    /// A single-item set.
    pub fn singleton(item: ItemId) -> Itemset {
        Itemset(vec![item])
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The item ids in increasing order.
    pub fn items(&self) -> &[ItemId] {
        &self.0
    }

    /// Membership test (binary search).
    pub fn contains(&self, item: ItemId) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// True when every item of `self` is in `other` (linear merge).
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        is_sorted_subset(&self.0, &other.0)
    }

    /// True when `self` is a strict subset of `other`.
    pub fn is_proper_subset_of(&self, other: &Itemset) -> bool {
        self.0.len() < other.0.len() && self.is_subset_of(other)
    }

    /// True when the two sets share no items.
    pub fn is_disjoint_from(&self, other: &Itemset) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Set union.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        Itemset(out)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Itemset) -> Itemset {
        Itemset(
            self.0
                .iter()
                .copied()
                .filter(|&x| !other.contains(x))
                .collect(),
        )
    }

    /// Inserts one item, keeping canonical order.
    pub fn with_item(&self, item: ItemId) -> Itemset {
        match self.0.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut v = self.0.clone();
                v.insert(pos, item);
                Itemset(v)
            }
        }
    }

    /// Iterates all non-empty proper subsets (for rule generation).
    ///
    /// For an itemset of size n, yields 2^n - 2 subsets; callers cap n at
    /// the paper's max itemset length of 5, so this is at most 30 subsets.
    pub fn proper_subsets(&self) -> Vec<Itemset> {
        let n = self.0.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        for mask in 1..((1u32 << n) - 1) {
            let subset: Vec<ItemId> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| self.0[i])
                .collect();
            out.push(Itemset(subset));
        }
        out
    }
}

/// True when sorted slice `a` is a subset of sorted slice `b`.
pub fn is_sorted_subset(a: &[ItemId], b: &[ItemId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    for &x in a {
        loop {
            if j == b.len() {
                return false;
            }
            match b[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

impl FromIterator<ItemId> for Itemset {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Itemset {
        Itemset::from_items(iter)
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

/// Bidirectional map between item labels (e.g. `"SM Util = 0%"`) and ids.
///
/// The catalog is append-only; ids are assigned densely in insertion order,
/// which also fixes the deterministic tie-break order used by the miners.
#[derive(Debug, Clone, Default)]
pub struct ItemCatalog {
    labels: Vec<String>,
    ids: HashMap<String, ItemId>,
}

impl ItemCatalog {
    /// Creates an empty catalog.
    pub fn new() -> ItemCatalog {
        ItemCatalog::default()
    }

    /// Interns a label, returning its id.
    pub fn intern(&mut self, label: &str) -> ItemId {
        if let Some(&id) = self.ids.get(label) {
            return id;
        }
        let id = self.labels.len() as ItemId;
        self.labels.push(label.to_string());
        self.ids.insert(label.to_string(), id);
        id
    }

    /// Looks up the id of a label without interning.
    pub fn id(&self, label: &str) -> Option<ItemId> {
        self.ids.get(label).copied()
    }

    /// The label for an id.
    pub fn label(&self, id: ItemId) -> &str {
        &self.labels[id as usize]
    }

    /// Number of interned items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no items are interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Renders an itemset as `{label, label, ...}` for reports.
    pub fn render(&self, itemset: &Itemset) -> String {
        let parts: Vec<&str> = itemset.items().iter().map(|&i| self.label(i)).collect();
        format!("{{{}}}", parts.join(", "))
    }

    /// All labels in id order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_items_canonicalizes() {
        let s = Itemset::from_items([3, 1, 3, 2]);
        assert_eq!(s.items(), &[1, 2, 3]);
    }

    #[test]
    fn subset_tests() {
        let a = Itemset::from_items([1, 3]);
        let b = Itemset::from_items([1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(a.is_proper_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(b.is_subset_of(&b));
        assert!(!b.is_proper_subset_of(&b));
    }

    #[test]
    fn disjoint_and_union() {
        let a = Itemset::from_items([1, 4]);
        let b = Itemset::from_items([2, 3]);
        let c = Itemset::from_items([3, 4]);
        assert!(a.is_disjoint_from(&b));
        assert!(!a.is_disjoint_from(&c));
        assert_eq!(a.union(&c).items(), &[1, 3, 4]);
    }

    #[test]
    fn difference_and_with_item() {
        let a = Itemset::from_items([1, 2, 3]);
        let b = Itemset::from_items([2]);
        assert_eq!(a.difference(&b).items(), &[1, 3]);
        assert_eq!(b.with_item(1).items(), &[1, 2]);
        assert_eq!(b.with_item(2).items(), &[2]);
    }

    #[test]
    fn proper_subsets_counts() {
        let a = Itemset::from_items([1, 2, 3]);
        let subs = a.proper_subsets();
        assert_eq!(subs.len(), 6);
        assert!(subs.contains(&Itemset::from_items([1])));
        assert!(subs.contains(&Itemset::from_items([1, 3])));
        assert!(!subs.contains(&a));
        assert!(!subs.contains(&Itemset::empty()));
    }

    #[test]
    fn catalog_roundtrip() {
        let mut cat = ItemCatalog::new();
        let a = cat.intern("SM Util = 0%");
        let b = cat.intern("Failed");
        assert_eq!(cat.intern("SM Util = 0%"), a);
        assert_eq!(cat.label(b), "Failed");
        assert_eq!(cat.id("Failed"), Some(b));
        assert_eq!(cat.id("nope"), None);
        assert_eq!(cat.len(), 2);
        let set = Itemset::from_items([a, b]);
        assert_eq!(cat.render(&set), "{SM Util = 0%, Failed}");
    }

    #[test]
    fn sorted_subset_edge_cases() {
        assert!(is_sorted_subset(&[], &[1, 2]));
        assert!(is_sorted_subset(&[], &[]));
        assert!(!is_sorted_subset(&[1], &[]));
        assert!(is_sorted_subset(&[2, 9], &[1, 2, 5, 9]));
        assert!(!is_sorted_subset(&[2, 10], &[1, 2, 5, 9]));
    }
}
