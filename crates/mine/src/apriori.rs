//! Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).
//!
//! Implemented as the baseline the paper compares FP-Growth against
//! (§III-C): level-wise candidate generation with the F(k-1) × F(k-1)
//! prefix join, subset-based pruning, and trie-accelerated support counting
//! (the trie plays the role of the original paper's hash tree). Support
//! counting is parallelised over deduplicated, multiplicity-weighted
//! transactions with rayon, and candidate generation is parallelised over
//! prefix-join runs; both merge per-worker results at the level barrier in
//! a fixed order, so output is byte-identical at every pool width.

use std::collections::HashMap;

use rayon::prelude::*;

use crate::budget::{BudgetGuard, MineError};
use crate::counts::{FrequentItemsets, MinerConfig};
use crate::db::TransactionDb;
use crate::item::{ItemId, Itemset};

/// Fibonacci-multiplicative hasher for the trie's packed `(node, item)`
/// edge keys: one `wrapping_mul` per lookup instead of SipHash's full
/// permutation rounds. Safe here because the keys are program-generated
/// dense indices, not attacker-controlled input.
#[derive(Debug, Default)]
struct EdgeHasher(u64);

impl std::hash::Hasher for EdgeHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u64 edge keys).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

#[derive(Debug, Default, Clone)]
struct EdgeHasherBuilder;

impl std::hash::BuildHasher for EdgeHasherBuilder {
    type Hasher = EdgeHasher;

    fn build_hasher(&self) -> EdgeHasher {
        EdgeHasher::default()
    }
}

/// A candidate-counting trie: one level per itemset position.
///
/// Each candidate of length k is a root-to-leaf path; counting walks every
/// transaction through the trie, advancing only along items present in the
/// transaction, so a transaction of length m visits at most C(m, k) paths —
/// and far fewer in practice because the trie is sparse.
///
/// Construction keeps edges in ONE flat hash map keyed by the prefix hash
/// `(node << 32) | item` (no per-node allocation, cheap multiplicative
/// hash). The build map is *not* what counting walks, though: support
/// counting used to re-hash an edge key per (node, transaction item) pair,
/// and at 10k jobs × C(m, k) paths per transaction those probes were the
/// entire level cost — ~170× slower than FP-Growth for identical output.
/// [`CandidateTrie::freeze`] therefore compiles the map into a [`FrozenTrie`]
/// (CSR adjacency, children sorted by item), whose walk advances a
/// two-pointer merge over the sorted transaction and the sorted child
/// slice: no hashing at all in the hot loop.
#[derive(Debug, Default)]
struct CandidateTrie {
    /// `(node << 32) | item` -> child node index.
    edges: HashMap<u64, u32, EdgeHasherBuilder>,
    /// `leaf[n]` = candidate index if node `n` terminates a candidate.
    leaf: Vec<Option<u32>>,
}

impl CandidateTrie {
    fn new() -> CandidateTrie {
        CandidateTrie {
            edges: HashMap::default(),
            leaf: vec![None],
        }
    }

    fn edge_key(node: u32, item: ItemId) -> u64 {
        (u64::from(node) << 32) | u64::from(item)
    }

    /// Inserts a candidate (sorted items) with its dense index.
    fn insert(&mut self, items: &[ItemId], candidate_idx: u32) {
        let mut node = 0u32;
        for &item in items {
            let next_free = self.leaf.len() as u32;
            let next = *self
                .edges
                .entry(Self::edge_key(node, item))
                .or_insert(next_free);
            if next == next_free {
                self.leaf.push(None);
            }
            node = next;
        }
        self.leaf[node as usize] = Some(candidate_idx);
    }

    /// Compiles the edge map into the CSR form counting walks.
    fn freeze(self) -> FrozenTrie {
        let n_nodes = self.leaf.len();
        let mut triples: Vec<(u32, ItemId, u32)> = self
            .edges
            .iter()
            .map(|(&key, &child)| ((key >> 32) as u32, key as ItemId, child))
            .collect();
        // Sorting by (node, item) yields per-node child slices already
        // ordered by item — what the merge walk needs.
        triples.sort_unstable();
        let mut child_start = vec![0u32; n_nodes + 1];
        for &(node, _, _) in &triples {
            child_start[node as usize + 1] += 1;
        }
        for i in 1..child_start.len() {
            child_start[i] += child_start[i - 1];
        }
        FrozenTrie {
            child_start,
            child_items: triples.iter().map(|&(_, item, _)| item).collect(),
            child_nodes: triples.iter().map(|&(_, _, child)| child).collect(),
            leaf: self.leaf,
        }
    }
}

/// The compiled, read-only form of a level's candidate trie: CSR
/// adjacency with children sorted by item. See [`CandidateTrie`] for why
/// this exists.
#[derive(Debug)]
struct FrozenTrie {
    /// Node `n`'s children live at `child_start[n]..child_start[n + 1]`.
    child_start: Vec<u32>,
    /// Edge labels, sorted within each node's slice.
    child_items: Vec<ItemId>,
    /// Child node index per edge (parallel to `child_items`).
    child_nodes: Vec<u32>,
    /// `leaf[n]` = candidate index if node `n` terminates a candidate.
    leaf: Vec<Option<u32>>,
}

impl FrozenTrie {
    /// Adds `weight` to `counts[c]` for every candidate `c` ⊆ `txn`.
    fn count_into(&self, txn: &[ItemId], weight: u64, counts: &mut [u64]) {
        self.walk(0, txn, weight, counts);
    }

    /// Rough heap-footprint estimate for budget accounting: per-node
    /// leaf slot + start offset, ~8 bytes per edge (label + child).
    fn estimated_bytes(&self) -> u64 {
        let per_node = std::mem::size_of::<Option<u32>>() + std::mem::size_of::<u32>();
        (self.leaf.len() * per_node + self.child_items.len() * 8) as u64
    }

    fn walk(&self, node: u32, txn: &[ItemId], weight: u64, counts: &mut [u64]) {
        if let Some(idx) = self.leaf[node as usize] {
            counts[idx as usize] += weight;
        }
        let start = self.child_start[node as usize] as usize;
        let end = self.child_start[node as usize + 1] as usize;
        if start == end {
            return;
        }
        let items = &self.child_items[start..end];
        let nodes = &self.child_nodes[start..end];
        // Two-pointer merge: both the transaction and the child slice
        // are sorted, so each matching edge is found without hashing.
        let (mut ci, mut ti) = (0, 0);
        while ci < items.len() && ti < txn.len() {
            match items[ci].cmp(&txn[ti]) {
                std::cmp::Ordering::Less => ci += 1,
                std::cmp::Ordering::Greater => ti += 1,
                std::cmp::Ordering::Equal => {
                    self.walk(nodes[ci], &txn[ti + 1..], weight, counts);
                    ci += 1;
                    ti += 1;
                }
            }
        }
    }
}

/// Joins one prefix run `frequent_k[start..end]` (all sharing a length-k-1
/// prefix) into its length-(k+1) candidates, pruning any candidate with an
/// infrequent k-subset. Subset lookups binary-search the sorted
/// `frequent_k` directly — no hash set, and the only allocation per probe
/// is one reused scratch buffer.
fn join_run(frequent_k: &[Itemset], start: usize, end: usize) -> Vec<Itemset> {
    let mut out = Vec::new();
    let mut sub: Vec<ItemId> = Vec::new();
    for i in start..end {
        for j in (i + 1)..end {
            let a = &frequent_k[i];
            let b = &frequent_k[j];
            let candidate = a.with_item(*b.items().last().expect("non-empty"));
            // Prune: every k-subset must be frequent.
            let all_frequent = candidate.items().iter().all(|&drop| {
                sub.clear();
                sub.extend(candidate.items().iter().copied().filter(|&x| x != drop));
                frequent_k
                    .binary_search_by(|probe| probe.items().cmp(&sub))
                    .is_ok()
            });
            if all_frequent {
                out.push(candidate);
            }
        }
    }
    out
}

/// Generates length-(k+1) candidates from frequent length-k itemsets using
/// the prefix join, then prunes candidates with an infrequent k-subset.
/// `frequent_k` must be sorted. With `parallel`, runs are joined
/// concurrently and concatenated in run order, so the candidate list is
/// identical to the sequential one.
fn generate_candidates(frequent_k: &[Itemset], parallel: bool) -> Vec<Itemset> {
    // frequent_k is sorted lexicographically, so joinable prefixes are
    // adjacent runs.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    while start < frequent_k.len() {
        let prefix_len = frequent_k[start].len() - 1;
        let prefix = &frequent_k[start].items()[..prefix_len];
        let mut end = start + 1;
        while end < frequent_k.len() && &frequent_k[end].items()[..prefix_len] == prefix {
            end += 1;
        }
        runs.push((start, end));
        start = end;
    }
    if parallel && runs.len() > 1 {
        let per_run: Vec<Vec<Itemset>> = (0..runs.len())
            .into_par_iter()
            .map(|r| join_run(frequent_k, runs[r].0, runs[r].1))
            .collect();
        per_run.into_iter().flatten().collect()
    } else {
        runs.iter()
            .flat_map(|&(s, e)| join_run(frequent_k, s, e))
            .collect()
    }
}

/// Collapses the database to unique transactions with multiplicity
/// weights: `(representative transaction index, copies)`. Identical rows
/// drive identical trie walks, so counting each unique row once and
/// adding its weight yields the same totals while skipping every
/// duplicate walk — a large win on categorical trace encodings where many
/// jobs share an identical attribute row.
fn dedup_transactions(db: &TransactionDb) -> Vec<(u32, u64)> {
    let mut order: Vec<u32> = (0..db.len() as u32).collect();
    order.sort_unstable_by_key(|&t| db.transaction(t as usize));
    let mut uniques: Vec<(u32, u64)> = Vec::new();
    for &t in &order {
        match uniques.last_mut() {
            Some(last) if db.transaction(last.0 as usize) == db.transaction(t as usize) => {
                last.1 += 1;
            }
            _ => uniques.push((t, 1)),
        }
    }
    uniques
}

/// Mines all frequent itemsets with the Apriori algorithm.
///
/// Output-equivalent to [`crate::fpgrowth`]; kept as the performance
/// baseline and as a cross-check oracle in property tests.
pub fn apriori(db: &TransactionDb, config: &MinerConfig) -> FrequentItemsets {
    match try_apriori(db, config, &BudgetGuard::unlimited()) {
        Ok(frequent) => frequent,
        // Unlimited guard: only a config error can surface here, matching
        // the panic the infallible signature always had.
        Err(e) => panic!("{e}"),
    }
}

/// [`apriori`] made fault-tolerant: itemset/deadline budgets are checked
/// once per level (level-wise search has no deep recursion to interleave
/// checks into) and per emitted itemset, and a cancelled token makes the
/// parallel counting fold skip its remaining transactions.
pub fn try_apriori(
    db: &TransactionDb,
    config: &MinerConfig,
    guard: &BudgetGuard,
) -> Result<FrequentItemsets, MineError> {
    config.validate().map_err(MineError::InvalidConfig)?;
    let min_count = config.min_count(db.len());
    guard.checkpoint_now()?;
    let mut all: Vec<(Itemset, u64)> = Vec::new();

    // L1.
    let counts = db.item_counts();
    let mut frequent_k: Vec<Itemset> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= min_count)
        .map(|(i, _)| Itemset::singleton(i as ItemId))
        .collect();
    for set in &frequent_k {
        guard.charge_itemsets(1)?;
        all.push((set.clone(), counts[set.items()[0] as usize]));
    }

    let mut k = 1;
    let uniques = if !frequent_k.is_empty() && config.max_len > 1 {
        dedup_transactions(db)
    } else {
        Vec::new()
    };
    while !frequent_k.is_empty() && k < config.max_len {
        guard.checkpoint_now()?;
        frequent_k.sort_unstable();
        let candidates = generate_candidates(&frequent_k, config.parallel);
        if candidates.is_empty() {
            break;
        }
        let mut trie = CandidateTrie::new();
        for (idx, c) in candidates.iter().enumerate() {
            trie.insert(c.items(), idx as u32);
        }
        let trie = trie.freeze();
        guard.charge_tree_bytes(trie.estimated_bytes())?;

        // Parallel support counting over the unique rows: per-worker local
        // count vectors, merged at the level barrier. The fold cannot
        // early-exit, so on cancellation it degrades to a no-op per
        // transaction and the post-level checkpoint reports the breach.
        let token = guard.token();
        let n = candidates.len();
        let chunk_counts: Vec<Vec<u64>> = (0..uniques.len())
            .into_par_iter()
            .fold(
                || vec![0u64; n],
                |mut local, u| {
                    if !token.is_cancelled() {
                        let (t, weight) = uniques[u];
                        trie.count_into(db.transaction(t as usize), weight, &mut local);
                    }
                    local
                },
            )
            .collect();
        guard.checkpoint_now()?;
        let mut totals = vec![0u64; n];
        for local in chunk_counts {
            for (t, l) in totals.iter_mut().zip(local) {
                *t += l;
            }
        }

        frequent_k = Vec::new();
        for (candidate, count) in candidates.into_iter().zip(totals) {
            if count >= min_count {
                guard.charge_itemsets(1)?;
                all.push((candidate.clone(), count));
                frequent_k.push(candidate);
            }
        }
        k += 1;
    }

    Ok(FrequentItemsets::new(all, db.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::fpgrowth;

    fn textbook_db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 1],
            vec![1, 2, 3],
            vec![0, 2, 3, 4],
            vec![0, 3, 4],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0],
            vec![0, 1, 2],
            vec![0, 1, 3],
            vec![1, 2, 4],
        ])
    }

    #[test]
    fn matches_fpgrowth_exactly() {
        let db = textbook_db();
        for min_support in [0.1, 0.2, 0.3, 0.5, 0.8] {
            let config = MinerConfig {
                min_support,
                max_len: 5,
                parallel: false,
            };
            let a = apriori(&db, &config);
            let f = fpgrowth(&db, &config);
            assert_eq!(a.as_slice(), f.as_slice(), "support {min_support}");
        }
    }

    #[test]
    fn counts_match_brute_force() {
        let db = textbook_db();
        let fi = apriori(&db, &MinerConfig::with_min_support(0.2));
        for (set, count) in fi.iter() {
            assert_eq!(*count, db.support_count(set), "wrong count for {set}");
        }
    }

    #[test]
    fn candidate_generation_prefix_join() {
        // {0,1}, {0,2}, {1,2} -> {0,1,2}; {1,3} alone cannot join further.
        let frequent = vec![
            Itemset::from_items([0, 1]),
            Itemset::from_items([0, 2]),
            Itemset::from_items([1, 2]),
            Itemset::from_items([1, 3]),
        ];
        let candidates = generate_candidates(&frequent, false);
        assert_eq!(candidates, vec![Itemset::from_items([0, 1, 2])]);
    }

    #[test]
    fn candidate_pruning_drops_unsupported_subsets() {
        // {0,1} and {0,2} join to {0,1,2} but {1,2} is not frequent.
        let frequent = vec![Itemset::from_items([0, 1]), Itemset::from_items([0, 2])];
        let candidates = generate_candidates(&frequent, false);
        assert!(candidates.is_empty());
    }

    #[test]
    fn max_len_respected() {
        let db = textbook_db();
        let config = MinerConfig {
            min_support: 0.1,
            max_len: 2,
            parallel: false,
        };
        let fi = apriori(&db, &config);
        assert!(fi.iter().all(|(s, _)| s.len() <= 2));
    }

    #[test]
    fn trie_counts_subsets() {
        let mut trie = CandidateTrie::new();
        trie.insert(&[1, 3], 0);
        trie.insert(&[1, 4], 1);
        trie.insert(&[2, 3], 2);
        let trie = trie.freeze();
        let mut counts = vec![0u64; 3];
        trie.count_into(&[1, 2, 3], 2, &mut counts);
        assert_eq!(counts, vec![2, 0, 2]);
    }

    #[test]
    fn parallel_candidate_generation_matches_sequential() {
        // Several disjoint prefix runs at k = 2.
        let mut frequent: Vec<Itemset> = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                frequent.push(Itemset::from_items([a, b]));
            }
        }
        frequent.sort_unstable();
        let sequential = generate_candidates(&frequent, false);
        let parallel = generate_candidates(&frequent, true);
        assert!(!sequential.is_empty());
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn dedup_weights_sum_to_db_len() {
        let db = TransactionDb::from_transactions(vec![
            vec![0, 1],
            vec![0, 1],
            vec![2],
            vec![0, 1],
            vec![2],
            vec![3, 4],
        ]);
        let uniques = dedup_transactions(&db);
        assert_eq!(uniques.len(), 3);
        assert_eq!(
            uniques.iter().map(|&(_, w)| w).sum::<u64>(),
            db.len() as u64
        );
    }
}
