//! Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).
//!
//! Implemented as the baseline the paper compares FP-Growth against
//! (§III-C): level-wise candidate generation with the F(k-1) × F(k-1)
//! prefix join, subset-based pruning, and trie-accelerated support counting
//! (the trie plays the role of the original paper's hash tree). Support
//! counting is parallelised over transactions with rayon.

use std::collections::{HashMap, HashSet};

use rayon::prelude::*;

use crate::budget::{BudgetGuard, MineError};
use crate::counts::{FrequentItemsets, MinerConfig};
use crate::db::TransactionDb;
use crate::item::{ItemId, Itemset};

/// Fibonacci-multiplicative hasher for the trie's packed `(node, item)`
/// edge keys: one `wrapping_mul` per lookup instead of SipHash's full
/// permutation rounds. Safe here because the keys are program-generated
/// dense indices, not attacker-controlled input.
#[derive(Debug, Default)]
struct EdgeHasher(u64);

impl std::hash::Hasher for EdgeHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u64 edge keys).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

#[derive(Debug, Default, Clone)]
struct EdgeHasherBuilder;

impl std::hash::BuildHasher for EdgeHasherBuilder {
    type Hasher = EdgeHasher;

    fn build_hasher(&self) -> EdgeHasher {
        EdgeHasher::default()
    }
}

/// A candidate-counting trie: one level per itemset position.
///
/// Each candidate of length k is a root-to-leaf path; counting walks every
/// transaction through the trie, advancing only along items present in the
/// transaction, so a transaction of length m visits at most C(m, k) paths —
/// and far fewer in practice because the trie is sparse.
///
/// Edges live in ONE flat hash map keyed by the prefix hash
/// `(node << 32) | item` instead of a per-node `HashMap` — no per-node
/// allocation, one cache-friendly probe per child lookup, and a cheap
/// multiplicative hash in place of SipHash.
#[derive(Debug, Default)]
struct CandidateTrie {
    /// `(node << 32) | item` -> child node index.
    edges: HashMap<u64, u32, EdgeHasherBuilder>,
    /// `leaf[n]` = candidate index if node `n` terminates a candidate.
    leaf: Vec<Option<u32>>,
    /// Whether node `n` has any outgoing edge (pruning the walk without
    /// probing the map).
    has_children: Vec<bool>,
}

impl CandidateTrie {
    fn new() -> CandidateTrie {
        CandidateTrie {
            edges: HashMap::default(),
            leaf: vec![None],
            has_children: vec![false],
        }
    }

    fn edge_key(node: u32, item: ItemId) -> u64 {
        (u64::from(node) << 32) | u64::from(item)
    }

    /// Inserts a candidate (sorted items) with its dense index.
    fn insert(&mut self, items: &[ItemId], candidate_idx: u32) {
        let mut node = 0u32;
        for &item in items {
            let next_free = self.leaf.len() as u32;
            let next = *self
                .edges
                .entry(Self::edge_key(node, item))
                .or_insert(next_free);
            if next == next_free {
                self.leaf.push(None);
                self.has_children.push(false);
                self.has_children[node as usize] = true;
            }
            node = next;
        }
        self.leaf[node as usize] = Some(candidate_idx);
    }

    /// Adds every candidate contained in `txn` to `hits`.
    fn count_into(&self, txn: &[ItemId], hits: &mut Vec<u32>) {
        self.walk(0, txn, hits);
    }

    /// Rough heap-footprint estimate for budget accounting: per-node
    /// leaf/child flags plus ~16 bytes per edge (key + value + control
    /// byte, rounded up).
    fn estimated_bytes(&self) -> u64 {
        let per_node = std::mem::size_of::<Option<u32>>() + 1;
        (self.leaf.len() * per_node + self.edges.len() * 16) as u64
    }

    fn walk(&self, node: u32, txn: &[ItemId], hits: &mut Vec<u32>) {
        if let Some(idx) = self.leaf[node as usize] {
            hits.push(idx);
        }
        if !self.has_children[node as usize] {
            return;
        }
        for (pos, &item) in txn.iter().enumerate() {
            if let Some(&next) = self.edges.get(&Self::edge_key(node, item)) {
                self.walk(next, &txn[pos + 1..], hits);
            }
        }
    }
}

/// Generates length-(k+1) candidates from frequent length-k itemsets using
/// the prefix join, then prunes candidates with an infrequent k-subset.
fn generate_candidates(frequent_k: &[Itemset]) -> Vec<Itemset> {
    let frequent: HashSet<&Itemset> = frequent_k.iter().collect();
    let mut candidates = Vec::new();
    // frequent_k is sorted lexicographically, so joinable prefixes are
    // adjacent runs.
    let mut start = 0;
    while start < frequent_k.len() {
        let prefix_len = frequent_k[start].len() - 1;
        let prefix = &frequent_k[start].items()[..prefix_len];
        let mut end = start + 1;
        while end < frequent_k.len() && &frequent_k[end].items()[..prefix_len] == prefix {
            end += 1;
        }
        for i in start..end {
            for j in (i + 1)..end {
                let a = &frequent_k[i];
                let b = &frequent_k[j];
                let candidate = a.with_item(*b.items().last().expect("non-empty"));
                // Prune: every k-subset must be frequent.
                let all_frequent = candidate.items().iter().all(|&drop| {
                    let sub = Itemset::from_items(
                        candidate.items().iter().copied().filter(|&x| x != drop),
                    );
                    frequent.contains(&sub)
                });
                if all_frequent {
                    candidates.push(candidate);
                }
            }
        }
        start = end;
    }
    candidates
}

/// Mines all frequent itemsets with the Apriori algorithm.
///
/// Output-equivalent to [`crate::fpgrowth`]; kept as the performance
/// baseline and as a cross-check oracle in property tests.
pub fn apriori(db: &TransactionDb, config: &MinerConfig) -> FrequentItemsets {
    match try_apriori(db, config, &BudgetGuard::unlimited()) {
        Ok(frequent) => frequent,
        // Unlimited guard: only a config error can surface here, matching
        // the panic the infallible signature always had.
        Err(e) => panic!("{e}"),
    }
}

/// [`apriori`] made fault-tolerant: itemset/deadline budgets are checked
/// once per level (level-wise search has no deep recursion to interleave
/// checks into) and per emitted itemset, and a cancelled token makes the
/// parallel counting fold skip its remaining transactions.
pub fn try_apriori(
    db: &TransactionDb,
    config: &MinerConfig,
    guard: &BudgetGuard,
) -> Result<FrequentItemsets, MineError> {
    config.validate().map_err(MineError::InvalidConfig)?;
    let min_count = config.min_count(db.len());
    guard.checkpoint_now()?;
    let mut all: Vec<(Itemset, u64)> = Vec::new();

    // L1.
    let counts = db.item_counts();
    let mut frequent_k: Vec<Itemset> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= min_count)
        .map(|(i, _)| Itemset::singleton(i as ItemId))
        .collect();
    for set in &frequent_k {
        guard.charge_itemsets(1)?;
        all.push((set.clone(), counts[set.items()[0] as usize]));
    }

    let mut k = 1;
    while !frequent_k.is_empty() && k < config.max_len {
        guard.checkpoint_now()?;
        frequent_k.sort_unstable();
        let candidates = generate_candidates(&frequent_k);
        if candidates.is_empty() {
            break;
        }
        let mut trie = CandidateTrie::new();
        for (idx, c) in candidates.iter().enumerate() {
            trie.insert(c.items(), idx as u32);
        }
        guard.charge_tree_bytes(trie.estimated_bytes())?;

        // Parallel support counting: per-chunk local count arrays, reduced.
        // The fold cannot early-exit, so on cancellation it degrades to a
        // no-op per transaction and the post-level checkpoint reports the
        // breach.
        let token = guard.token();
        let n = candidates.len();
        let chunk_counts: Vec<Vec<u64>> = (0..db.len())
            .into_par_iter()
            .fold(
                || (vec![0u64; n], Vec::new()),
                |(mut local, mut hits), t| {
                    if !token.is_cancelled() {
                        hits.clear();
                        trie.count_into(db.transaction(t), &mut hits);
                        for &idx in &hits {
                            local[idx as usize] += 1;
                        }
                    }
                    (local, hits)
                },
            )
            .map(|(local, _)| local)
            .collect();
        guard.checkpoint_now()?;
        let mut totals = vec![0u64; n];
        for local in chunk_counts {
            for (t, l) in totals.iter_mut().zip(local) {
                *t += l;
            }
        }

        frequent_k = Vec::new();
        for (candidate, count) in candidates.into_iter().zip(totals) {
            if count >= min_count {
                guard.charge_itemsets(1)?;
                all.push((candidate.clone(), count));
                frequent_k.push(candidate);
            }
        }
        k += 1;
    }

    Ok(FrequentItemsets::new(all, db.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::fpgrowth;

    fn textbook_db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 1],
            vec![1, 2, 3],
            vec![0, 2, 3, 4],
            vec![0, 3, 4],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0],
            vec![0, 1, 2],
            vec![0, 1, 3],
            vec![1, 2, 4],
        ])
    }

    #[test]
    fn matches_fpgrowth_exactly() {
        let db = textbook_db();
        for min_support in [0.1, 0.2, 0.3, 0.5, 0.8] {
            let config = MinerConfig {
                min_support,
                max_len: 5,
                parallel: false,
            };
            let a = apriori(&db, &config);
            let f = fpgrowth(&db, &config);
            assert_eq!(a.as_slice(), f.as_slice(), "support {min_support}");
        }
    }

    #[test]
    fn counts_match_brute_force() {
        let db = textbook_db();
        let fi = apriori(&db, &MinerConfig::with_min_support(0.2));
        for (set, count) in fi.iter() {
            assert_eq!(*count, db.support_count(set), "wrong count for {set}");
        }
    }

    #[test]
    fn candidate_generation_prefix_join() {
        // {0,1}, {0,2}, {1,2} -> {0,1,2}; {1,3} alone cannot join further.
        let frequent = vec![
            Itemset::from_items([0, 1]),
            Itemset::from_items([0, 2]),
            Itemset::from_items([1, 2]),
            Itemset::from_items([1, 3]),
        ];
        let candidates = generate_candidates(&frequent);
        assert_eq!(candidates, vec![Itemset::from_items([0, 1, 2])]);
    }

    #[test]
    fn candidate_pruning_drops_unsupported_subsets() {
        // {0,1} and {0,2} join to {0,1,2} but {1,2} is not frequent.
        let frequent = vec![Itemset::from_items([0, 1]), Itemset::from_items([0, 2])];
        let candidates = generate_candidates(&frequent);
        assert!(candidates.is_empty());
    }

    #[test]
    fn max_len_respected() {
        let db = textbook_db();
        let config = MinerConfig {
            min_support: 0.1,
            max_len: 2,
            parallel: false,
        };
        let fi = apriori(&db, &config);
        assert!(fi.iter().all(|(s, _)| s.len() <= 2));
    }

    #[test]
    fn trie_counts_subsets() {
        let mut trie = CandidateTrie::new();
        trie.insert(&[1, 3], 0);
        trie.insert(&[1, 4], 1);
        trie.insert(&[2, 3], 2);
        let mut hits = Vec::new();
        trie.count_into(&[1, 2, 3], &mut hits);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
    }
}
