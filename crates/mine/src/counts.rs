//! Miner configuration and the frequent-itemset result type.

use std::collections::HashMap;

use crate::item::Itemset;

/// Parameters shared by every miner.
#[derive(Debug, Clone, PartialEq)]
pub struct MinerConfig {
    /// Minimum support as a fraction of transactions, in `(0, 1]`.
    ///
    /// The paper uses 0.05 ("5% of the total number of jobs in the trace").
    pub min_support: f64,
    /// Maximum itemset length. The paper caps this at 5 to keep generated
    /// rules from becoming over-specific (§III-D).
    pub max_len: usize,
    /// Whether FP-Growth partitions the header table across rayon workers.
    pub parallel: bool,
}

impl Default for MinerConfig {
    fn default() -> MinerConfig {
        MinerConfig {
            min_support: 0.05,
            max_len: 5,
            parallel: true,
        }
    }
}

impl MinerConfig {
    /// A sequential config with the given support threshold.
    pub fn with_min_support(min_support: f64) -> MinerConfig {
        MinerConfig {
            min_support,
            ..MinerConfig::default()
        }
    }

    /// The absolute support count implied by `min_support` over `n_txns`
    /// transactions. At least 1 so that "frequent" always means "observed".
    ///
    /// The ceiling is epsilon-robust: `min_support` values written as
    /// decimal fractions are not exactly representable in binary, so the
    /// naive product can land a few ulps *above* the intended threshold
    /// (`0.07 * 100 == 7.000000000000001`) and a plain `ceil` would then
    /// silently exclude items sitting exactly at the threshold. An
    /// 8-ulp-scaled margin absorbs the representation and multiplication
    /// rounding (at most ~3 ulps) while staying far below the 1-count
    /// granularity that separates genuinely distinct thresholds.
    pub fn min_count(&self, n_txns: usize) -> u64 {
        let raw = self.min_support * n_txns as f64;
        let margin = 8.0 * f64::EPSILON * raw;
        ((raw - margin).ceil() as u64).max(1)
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.min_support > 0.0 && self.min_support <= 1.0) {
            return Err(format!(
                "min_support must be in (0, 1], got {}",
                self.min_support
            ));
        }
        if self.max_len == 0 {
            return Err("max_len must be at least 1".to_string());
        }
        Ok(())
    }
}

/// The family of frequent itemsets found by a miner, with support counts.
///
/// Stored both as a vector (deterministic order: by length, then
/// lexicographically) and as a hash map for O(1) support lookup during rule
/// generation — every subset of a frequent itemset is itself frequent, so
/// rule confidence is always resolvable from this map.
#[derive(Debug, Clone, Default)]
pub struct FrequentItemsets {
    sets: Vec<(Itemset, u64)>,
    lookup: HashMap<Itemset, u64>,
    n_transactions: usize,
}

impl FrequentItemsets {
    /// Builds the result from raw `(itemset, count)` pairs.
    ///
    /// Pairs are sorted into canonical order; duplicate itemsets are a
    /// miner bug and panic in debug builds.
    pub fn new(mut sets: Vec<(Itemset, u64)>, n_transactions: usize) -> FrequentItemsets {
        sets.sort_unstable_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
        debug_assert!(
            sets.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate itemset emitted by miner"
        );
        let lookup = sets.iter().cloned().collect();
        FrequentItemsets {
            sets,
            lookup,
            n_transactions,
        }
    }

    /// All frequent itemsets in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &(Itemset, u64)> + '_ {
        self.sets.iter()
    }

    /// Number of frequent itemsets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no itemset met the support threshold.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Number of transactions the supports are relative to.
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Support count of a frequent itemset, if it is frequent.
    pub fn count(&self, itemset: &Itemset) -> Option<u64> {
        self.lookup.get(itemset).copied()
    }

    /// Support fraction of a frequent itemset, if it is frequent.
    pub fn support(&self, itemset: &Itemset) -> Option<f64> {
        self.count(itemset)
            .map(|c| c as f64 / self.n_transactions.max(1) as f64)
    }

    /// Itemsets of exactly length `k` in canonical order.
    pub fn of_len(&self, k: usize) -> impl Iterator<Item = &(Itemset, u64)> + '_ {
        self.sets.iter().filter(move |(s, _)| s.len() == k)
    }

    /// Largest itemset length present.
    pub fn max_len(&self) -> usize {
        self.sets.iter().map(|(s, _)| s.len()).max().unwrap_or(0)
    }

    /// The canonical `(itemset, count)` slice.
    pub fn as_slice(&self) -> &[(Itemset, u64)] {
        &self.sets
    }

    /// The `k` most frequent itemsets (count-descending, canonical order
    /// as tie-break). Returns fewer when the family is smaller.
    pub fn top_k(&self, k: usize) -> Vec<(Itemset, u64)> {
        let mut ranked: Vec<(Itemset, u64)> = self.sets.clone();
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.len().cmp(&b.0.len()))
                .then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }
}

/// Mines the `k` most frequent itemsets by dynamic support raising:
/// start from a high threshold and halve it until at least `k` itemsets
/// qualify (or the floor of one transaction is reached), then keep the
/// top `k`. Avoids low-support blowup when only the head is wanted.
pub fn mine_top_k(
    db: &crate::db::TransactionDb,
    k: usize,
    max_len: usize,
    mine: impl Fn(&crate::db::TransactionDb, &MinerConfig) -> FrequentItemsets,
) -> Vec<(Itemset, u64)> {
    if db.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut min_support = 0.5f64;
    loop {
        let config = MinerConfig {
            min_support,
            max_len,
            parallel: true,
        };
        let frequent = mine(db, &config);
        let floor_reached = config.min_count(db.len()) <= 1;
        if frequent.len() >= k || floor_reached {
            return frequent.top_k(k);
        }
        min_support /= 2.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Itemset;

    #[test]
    fn min_count_rounds_up_and_floors_at_one() {
        let c = MinerConfig::with_min_support(0.05);
        assert_eq!(c.min_count(100), 5);
        assert_eq!(c.min_count(101), 6);
        assert_eq!(c.min_count(3), 1);
        assert_eq!(c.min_count(0), 1);
    }

    #[test]
    fn min_count_exact_at_threshold() {
        // Regression: 0.07 * 100 evaluates to 7.000000000000001, and the
        // pre-fix plain ceil returned 8, silently excluding items sitting
        // exactly at the support threshold.
        assert_eq!(MinerConfig::with_min_support(0.07).min_count(100), 7);
        assert_eq!(MinerConfig::with_min_support(0.29).min_count(100), 29);
        assert_eq!(MinerConfig::with_min_support(0.58).min_count(400), 232);
    }

    #[test]
    fn min_count_matches_exact_integer_arithmetic_on_grid() {
        // Sweep every percentage threshold against every database size up
        // to 2000 and compare with exact integer arithmetic:
        // ceil(s * n / 100) == (s * n + 99) / 100. The pre-fix float path
        // disagreed on 290 of these pairs.
        let mut checked = 0u64;
        for s in 1..=100u64 {
            let config = MinerConfig::with_min_support(s as f64 / 100.0);
            for n in 0..=2000u64 {
                let expected = ((s * n).div_ceil(100)).max(1);
                let got = config.min_count(n as usize);
                assert_eq!(got, expected, "support {s}% over {n} txns");
                checked += 1;
            }
        }
        assert_eq!(checked, 100 * 2001);
    }

    #[test]
    fn validate_ranges() {
        assert!(MinerConfig::with_min_support(0.05).validate().is_ok());
        assert!(MinerConfig::with_min_support(0.0).validate().is_err());
        assert!(MinerConfig::with_min_support(1.5).validate().is_err());
        let c = MinerConfig {
            max_len: 0,
            ..MinerConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn top_k_orders_by_count() {
        let sets = vec![
            (Itemset::from_items([0]), 7),
            (Itemset::from_items([1]), 9),
            (Itemset::from_items([0, 1]), 5),
        ];
        let fi = FrequentItemsets::new(sets, 10);
        let top = fi.top_k(2);
        assert_eq!(top[0].1, 9);
        assert_eq!(top[1].1, 7);
        assert_eq!(fi.top_k(10).len(), 3);
        assert!(fi.top_k(0).is_empty());
    }

    #[test]
    fn mine_top_k_raises_support_dynamically() {
        use crate::fpgrowth::fpgrowth;
        // 0 in every txn; 1 in half; 2 rare.
        let txns: Vec<Vec<u32>> = (0..64)
            .map(|i| {
                let mut t = vec![0u32];
                if i % 2 == 0 {
                    t.push(1);
                }
                if i % 16 == 0 {
                    t.push(2);
                }
                t
            })
            .collect();
        let db = crate::db::TransactionDb::from_transactions(txns);
        let top = mine_top_k(&db, 3, 5, fpgrowth);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], (Itemset::from_items([0]), 64));
        assert_eq!(top[1].1, 32);
        // Asking for more than exists returns the full family.
        let all = mine_top_k(&db, 1000, 5, fpgrowth);
        assert!(all.len() >= 5 && all.len() < 1000);
        // Degenerate inputs.
        assert!(mine_top_k(&db, 0, 5, fpgrowth).is_empty());
        let empty = crate::db::TransactionDb::from_transactions(Vec::<Vec<u32>>::new());
        assert!(mine_top_k(&empty, 3, 5, fpgrowth).is_empty());
    }

    #[test]
    fn result_sorted_and_queryable() {
        let sets = vec![
            (Itemset::from_items([2]), 5),
            (Itemset::from_items([0, 1]), 3),
            (Itemset::from_items([0]), 7),
        ];
        let fi = FrequentItemsets::new(sets, 10);
        assert_eq!(fi.len(), 3);
        let order: Vec<usize> = fi.iter().map(|(s, _)| s.len()).collect();
        assert_eq!(order, vec![1, 1, 2]);
        assert_eq!(fi.count(&Itemset::from_items([0, 1])), Some(3));
        assert_eq!(fi.support(&Itemset::from_items([2])), Some(0.5));
        assert_eq!(fi.count(&Itemset::from_items([9])), None);
        assert_eq!(fi.of_len(1).count(), 2);
        assert_eq!(fi.max_len(), 2);
    }
}
