//! # irma-mine — frequent-itemset mining
//!
//! Hand-rolled implementations of the three classic frequent-itemset
//! miners for the IRMA reproduction:
//!
//! * [`fpgrowth`] — the paper's miner of choice (§III-C): FP-tree with
//!   conditional-pattern-base recursion, single-prefix-path shortcut, and
//!   optional rayon fan-out over the header table;
//! * [`apriori`] — the level-wise baseline FP-Growth is compared against;
//! * [`eclat`] — a vertical (tid-list) miner used as a third independent
//!   oracle in the equivalence property tests.
//!
//! All three take a [`TransactionDb`] and a [`MinerConfig`] and return the
//! identical [`FrequentItemsets`] family (property-tested), so downstream
//! rule generation is miner-agnostic.
//!
//! ```
//! use irma_mine::{fpgrowth, MinerConfig, TransactionDb, Itemset};
//!
//! let db = TransactionDb::from_transactions(vec![
//!     vec![0, 1, 2],
//!     vec![0, 1],
//!     vec![0, 2],
//! ]);
//! let frequent = fpgrowth(&db, &MinerConfig::with_min_support(0.6));
//! assert_eq!(frequent.count(&Itemset::from_items([0, 1])), Some(2));
//! ```

#![warn(missing_docs)]

mod apriori;
mod budget;
mod condense;
mod counts;
mod db;
mod eclat;
mod fpgrowth;
mod incremental;
mod item;
pub mod simd;
mod stream;

pub use apriori::{apriori, try_apriori};
pub use budget::{BudgetBreach, BudgetGuard, CancelToken, ExecBudget, MineError};
pub use condense::{closed_itemsets, maximal_itemsets, support_from_closed};
pub use counts::{mine_top_k, FrequentItemsets, MinerConfig};
pub use db::TransactionDb;
pub use eclat::{eclat, try_eclat};
pub use fpgrowth::{fpgrowth, fpgrowth_with, try_fpgrowth_paths_with, try_fpgrowth_with};
pub use incremental::IncrementalFpTree;
pub use item::{is_sorted_subset, ItemCatalog, ItemId, Itemset};
pub use stream::SlidingWindowMiner;

/// Which mining algorithm a pipeline should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// FP-Growth (default; the paper's choice).
    #[default]
    FpGrowth,
    /// Apriori baseline.
    Apriori,
    /// Eclat baseline.
    Eclat,
}

impl Algorithm {
    /// Runs the selected miner.
    pub fn mine(self, db: &TransactionDb, config: &MinerConfig) -> FrequentItemsets {
        self.mine_with(db, config, &irma_obs::Metrics::disabled())
    }

    /// [`Algorithm::mine`] with observability. FP-Growth reports its
    /// tree-build/mine split; the baselines emit a single `mine.mine`
    /// stage event with the input/output cardinalities.
    pub fn mine_with(
        self,
        db: &TransactionDb,
        config: &MinerConfig,
        metrics: &irma_obs::Metrics,
    ) -> FrequentItemsets {
        match self {
            Algorithm::FpGrowth => fpgrowth_with(db, config, metrics),
            Algorithm::Apriori | Algorithm::Eclat => {
                let mut span = metrics.span("mine.mine");
                let frequent = match self {
                    Algorithm::Apriori => apriori(db, config),
                    _ => eclat(db, config),
                };
                span.field("transactions_in", db.len() as u64);
                span.field("itemsets_out", frequent.len() as u64);
                frequent
            }
        }
    }

    /// [`Algorithm::mine_with`] made fault-tolerant: runs the selected
    /// miner under `guard`, so budget breaches, invalid configs, and
    /// (for FP-Growth's fan-out) contained worker panics come back as a
    /// typed [`MineError`] instead of unwinding.
    pub fn try_mine_with(
        self,
        db: &TransactionDb,
        config: &MinerConfig,
        metrics: &irma_obs::Metrics,
        guard: &BudgetGuard,
    ) -> Result<FrequentItemsets, MineError> {
        match self {
            Algorithm::FpGrowth => try_fpgrowth_with(db, config, metrics, guard),
            Algorithm::Apriori | Algorithm::Eclat => {
                let mut span = metrics.span("mine.mine");
                let frequent = match self {
                    Algorithm::Apriori => try_apriori(db, config, guard)?,
                    _ => try_eclat(db, config, guard)?,
                };
                span.field("transactions_in", db.len() as u64);
                span.field("itemsets_out", frequent.len() as u64);
                Ok(frequent)
            }
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::FpGrowth => "fpgrowth",
            Algorithm::Apriori => "apriori",
            Algorithm::Eclat => "eclat",
        }
    }

    /// All available algorithms.
    pub fn all() -> [Algorithm; 3] {
        [Algorithm::FpGrowth, Algorithm::Apriori, Algorithm::Eclat]
    }
}
