//! Condensed representations: closed and maximal frequent itemsets.
//!
//! The full frequent-itemset family is heavily redundant (the paper mines
//! ~232k itemsets from PAI at 5% support). Two standard lossless /
//! lossy condensations:
//!
//! * an itemset is **closed** if no proper superset has the *same*
//!   support — the closed family plus counts reconstructs every frequent
//!   itemset's support exactly;
//! * an itemset is **maximal** if no proper superset is frequent at all —
//!   the smallest family that still determines *which* itemsets are
//!   frequent (but not their supports).
//!
//! These power the itemset-family diagnostics in the experiments output
//! and give downstream users a compact artifact to store.

use crate::counts::FrequentItemsets;
use crate::item::Itemset;

/// Closed frequent itemsets (with their support counts), canonical order.
///
/// Closure is evaluated *within the mined family*: with a `max_len` cap a
/// same-support superset longer than the cap is invisible, which is the
/// right notion for downstream consumers of the capped family.
///
/// Checks each itemset's one-item extensions (support monotonicity makes
/// an equal-support superset imply an equal-support immediate extension)
/// instead of all pairs.
pub fn closed_itemsets(frequent: &FrequentItemsets) -> Vec<(Itemset, u64)> {
    frequent
        .iter()
        .filter(|(set, count)| {
            // Closed iff no one-item extension keeps the same support.
            // (Support is monotone, so any same-support superset implies a
            // same-support immediate extension on a path towards it.)
            !one_item_extensions(frequent, set).any(|(_, ext_count)| ext_count == *count)
        })
        .cloned()
        .collect()
}

/// Maximal frequent itemsets, canonical order.
pub fn maximal_itemsets(frequent: &FrequentItemsets) -> Vec<(Itemset, u64)> {
    frequent
        .iter()
        .filter(|(set, _)| one_item_extensions(frequent, set).next().is_none())
        .cloned()
        .collect()
}

/// Iterates the frequent one-item extensions of `set`.
fn one_item_extensions<'a>(
    frequent: &'a FrequentItemsets,
    set: &'a Itemset,
) -> impl Iterator<Item = (Itemset, u64)> + 'a {
    // Extend with every item seen in any length-1 frequent itemset.
    frequent.of_len(1).filter_map(move |(single, _)| {
        let item = single.items()[0];
        if set.contains(item) {
            return None;
        }
        let extended = set.with_item(item);
        frequent.count(&extended).map(|c| (extended, c))
    })
}

/// Reconstructs the support of any frequent itemset from the closed
/// family: it equals the maximum count among closed supersets.
///
/// Returns `None` when the itemset is not frequent (no closed superset).
pub fn support_from_closed(closed: &[(Itemset, u64)], itemset: &Itemset) -> Option<u64> {
    closed
        .iter()
        .filter(|(c, _)| itemset.is_subset_of(c))
        .map(|(_, count)| *count)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::MinerConfig;
    use crate::db::TransactionDb;
    use crate::fpgrowth::fpgrowth;

    fn db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1],
            vec![0, 2],
            vec![2],
        ])
    }

    fn mined() -> FrequentItemsets {
        fpgrowth(&db(), &MinerConfig::with_min_support(0.2))
    }

    #[test]
    fn closed_sets_identified() {
        let frequent = mined();
        let closed = closed_itemsets(&frequent);
        // {1} has support 3 but {0,1} also has support 3 -> {1} not closed.
        assert!(!closed.iter().any(|(s, _)| s == &Itemset::from_items([1])));
        // {0} has support 4, no superset reaches 4 -> closed.
        assert!(closed.iter().any(|(s, _)| s == &Itemset::from_items([0])));
        // The top itemset is always closed.
        assert!(closed
            .iter()
            .any(|(s, _)| s == &Itemset::from_items([0, 1, 2])));
    }

    #[test]
    fn maximal_is_subset_of_closed() {
        let frequent = mined();
        let closed = closed_itemsets(&frequent);
        let maximal = maximal_itemsets(&frequent);
        assert!(!maximal.is_empty());
        for m in &maximal {
            assert!(closed.contains(m), "maximal {m:?} must be closed");
        }
        assert!(maximal.len() <= closed.len());
        assert!(closed.len() <= frequent.len());
    }

    #[test]
    fn closed_family_reconstructs_all_supports() {
        let frequent = mined();
        let closed = closed_itemsets(&frequent);
        for (set, count) in frequent.iter() {
            assert_eq!(
                support_from_closed(&closed, set),
                Some(*count),
                "support of {set} lost by closure"
            );
        }
    }

    #[test]
    fn infrequent_itemset_not_reconstructable() {
        let frequent = mined();
        let closed = closed_itemsets(&frequent);
        assert_eq!(
            support_from_closed(&closed, &Itemset::from_items([0, 1, 2, 3])),
            None
        );
    }

    #[test]
    fn empty_family() {
        let frequent = FrequentItemsets::new(Vec::new(), 10);
        assert!(closed_itemsets(&frequent).is_empty());
        assert!(maximal_itemsets(&frequent).is_empty());
    }
}
