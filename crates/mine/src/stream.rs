//! Sliding-window mining over a job stream.
//!
//! The paper's workflow is batch, but its related-work discussion (§VI)
//! notes that the pruning stage composes with streaming miners because it
//! runs after rule generation. This module provides that substrate: a
//! bounded sliding window over arriving transactions with cheap
//! always-current single-item counts, an item-frequency *drift* signal to
//! decide when re-mining is worthwhile, and on-demand full mining of the
//! current window via FP-Growth.
//!
//! Two structures are maintained incrementally so the per-arrival cost is
//! O(|txn|) regardless of window size:
//!
//! * an [`IncrementalFpTree`] mirroring the window's transaction multiset
//!   (insert on push, decrement/unlink on evict), so
//!   [`SlidingWindowMiner::mine`] feeds FP-Growth weighted paths instead
//!   of re-copying the whole window into a [`TransactionDb`];
//! * the L1 drift against the last-mine baseline, updated term-wise over
//!   the arriving∪evicted item union, so monitors polling
//!   [`SlidingWindowMiner::drift`] per arrival no longer pay a full
//!   item-universe rescan per call.

use std::collections::VecDeque;

use irma_obs::Metrics;

use crate::budget::{BudgetGuard, MineError};
use crate::counts::{FrequentItemsets, MinerConfig};
use crate::db::TransactionDb;
use crate::fpgrowth::try_fpgrowth_paths_with;
use crate::incremental::IncrementalFpTree;
use crate::item::ItemId;

/// A bounded sliding window of transactions with incremental item counts.
#[derive(Debug, Clone)]
pub struct SlidingWindowMiner {
    capacity: usize,
    window: VecDeque<Vec<ItemId>>,
    item_counts: Vec<u64>,
    /// The window's transaction multiset as a removable prefix tree,
    /// kept in lockstep with `window` by `push`.
    tree: IncrementalFpTree,
    /// Item counts at the time of the last successful mine (drift
    /// baseline).
    baseline: Option<(usize, Vec<u64>)>,
    /// Incrementally-maintained L1 drift against `baseline`; only valid
    /// while `drift_dirty` is false.
    drift_cache: f64,
    /// Set when the window length changed since the last mine (every
    /// per-item term shifts, so the cache cannot be patched term-wise).
    drift_dirty: bool,
    config: MinerConfig,
    metrics: Metrics,
    /// Flat scratch for path extraction, reused across mines.
    path_items: Vec<ItemId>,
    path_spans: Vec<(u32, u32, u64)>,
}

impl SlidingWindowMiner {
    /// Creates a miner over a window of at most `capacity` transactions.
    pub fn new(capacity: usize, config: MinerConfig) -> SlidingWindowMiner {
        assert!(capacity > 0, "window capacity must be positive");
        config.validate().expect("invalid miner config");
        SlidingWindowMiner {
            capacity,
            window: VecDeque::with_capacity(capacity),
            item_counts: Vec::new(),
            tree: IncrementalFpTree::new(),
            baseline: None,
            drift_cache: 0.0,
            drift_dirty: false,
            config,
            metrics: Metrics::disabled(),
            path_items: Vec::new(),
            path_spans: Vec::new(),
        }
    }

    /// Attaches a metrics sink: every [`SlidingWindowMiner::mine`] call
    /// then emits a `stream.remine` stage event (window size, itemsets
    /// out, drift at the moment of re-mining in milli-units) and updates
    /// the `stream.evictions` counter as the window slides.
    pub fn with_metrics(mut self, metrics: Metrics) -> SlidingWindowMiner {
        self.metrics = metrics;
        self
    }

    /// Pushes one transaction, evicting the oldest when full. Returns the
    /// evicted transaction, if any.
    pub fn push<I: IntoIterator<Item = ItemId>>(&mut self, txn: I) -> Option<Vec<ItemId>> {
        let mut t: Vec<ItemId> = txn.into_iter().collect();
        t.sort_unstable();
        t.dedup();
        if let Some(&max) = t.last() {
            if max as usize >= self.item_counts.len() {
                self.item_counts.resize(max as usize + 1, 0);
            }
        }
        let evicting = self.window.len() == self.capacity;
        // Retire the stale drift terms of every item this push touches
        // while the counts still hold their pre-push values; the matching
        // fresh terms are added back after the counts settle. Only an
        // at-capacity push keeps the window length (and thus every other
        // item's term) unchanged — a growing window invalidates the whole
        // cache instead.
        if !self.drift_dirty {
            if let Some(baseline) = &self.baseline {
                if evicting {
                    let n = self.capacity as f64;
                    let old = self.window.front().expect("window full");
                    let stale = union_drift_terms(&t, old, &self.item_counts, baseline, n);
                    self.drift_cache -= stale;
                } else {
                    self.drift_dirty = true;
                }
            }
        }
        for &item in &t {
            self.item_counts[item as usize] += 1;
        }
        self.tree.insert(&t);
        let evicted = if evicting {
            let old = self.window.pop_front().expect("window full");
            for &item in &old {
                self.item_counts[item as usize] -= 1;
            }
            self.tree.remove(&old);
            self.metrics.incr("stream.evictions", 1);
            Some(old)
        } else {
            None
        };
        if !self.drift_dirty {
            if let (Some(baseline), Some(old)) = (&self.baseline, &evicted) {
                let n = self.capacity as f64;
                let fresh = union_drift_terms(&t, old, &self.item_counts, baseline, n);
                self.drift_cache += fresh;
            }
        }
        self.window.push_back(t);
        evicted
    }

    /// Number of transactions currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Current support count of a single item (O(1)).
    pub fn item_count(&self, item: ItemId) -> u64 {
        self.item_counts.get(item as usize).copied().unwrap_or(0)
    }

    /// Items currently above the configured support threshold (O(items)).
    pub fn hot_items(&self) -> Vec<ItemId> {
        let min_count = self.config.min_count(self.window.len());
        self.item_counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(i, _)| i as ItemId)
            .collect()
    }

    /// L1 distance between the current item-frequency distribution and the
    /// one at the last successful mine, normalized to `[0, 2]`.
    ///
    /// 0 means unchanged; callers typically re-mine when drift exceeds a
    /// small threshold instead of on every arrival. In the steady state
    /// (window at capacity since the last mine) this reads a cached value
    /// maintained in O(|txn|) per push; only a window that grew since the
    /// last mine falls back to the full rescan.
    pub fn drift(&self) -> f64 {
        let Some((base_n, base)) = &self.baseline else {
            return f64::INFINITY;
        };
        if !self.drift_dirty {
            return self.drift_cache;
        }
        let n = self.window.len().max(1) as f64;
        let bn = (*base_n).max(1) as f64;
        let len = self.item_counts.len().max(base.len());
        (0..len)
            .map(|i| {
                let cur = self.item_counts.get(i).copied().unwrap_or(0) as f64 / n;
                let old = base.get(i).copied().unwrap_or(0) as f64 / bn;
                (cur - old).abs()
            })
            .sum()
    }

    /// Mines the current window with FP-Growth and resets the drift
    /// baseline. Unbudgeted; daemons should use
    /// [`SlidingWindowMiner::try_mine`] instead.
    pub fn mine(&mut self) -> FrequentItemsets {
        match self.try_mine(&BudgetGuard::unlimited()) {
            Ok(frequent) => frequent,
            // An unlimited guard never trips, so the only reachable error
            // is a config one — rejected by the constructor already.
            Err(e) => panic!("{e}"),
        }
    }

    /// [`SlidingWindowMiner::mine`] under an execution budget: a breach
    /// comes back as [`MineError::Budget`] with the drift baseline — and
    /// therefore the caller's re-mine triggering — left exactly as it
    /// was, so a failed attempt neither masks the drift that prompted it
    /// nor double-counts it on retry.
    pub fn try_mine(&mut self, guard: &BudgetGuard) -> Result<FrequentItemsets, MineError> {
        let config = self.config.clone();
        self.try_mine_with(&config, guard)
    }

    /// [`SlidingWindowMiner::try_mine`] with an explicit config override:
    /// the degradation ladder's entry point, where retries relax the
    /// knobs without mutating the miner's own configuration.
    pub fn try_mine_with(
        &mut self,
        config: &MinerConfig,
        guard: &BudgetGuard,
    ) -> Result<FrequentItemsets, MineError> {
        let drift = self.drift();
        let mut span = self.metrics.span("stream.remine");
        self.tree
            .collect_paths(&mut self.path_items, &mut self.path_spans);
        let items = &self.path_items;
        let paths = self
            .path_spans
            .iter()
            .map(|&(start, end, weight)| (&items[start as usize..end as usize], weight));
        let result = try_fpgrowth_paths_with(
            paths,
            self.window.len(),
            self.item_counts.len().max(1),
            config,
            &self.metrics,
            guard,
        );
        span.field("window", self.window.len() as u64);
        match &result {
            Ok(frequent) => {
                // Baseline (and the cached drift it anchors) commits only
                // on success: a budget-tripped attempt must leave the
                // drift signal untouched.
                self.baseline = Some((self.window.len(), self.item_counts.clone()));
                self.drift_cache = 0.0;
                self.drift_dirty = false;
                span.field("itemsets_out", frequent.len() as u64);
                // Drift is a float in [0, 2] (infinite before the first
                // mine); record it as milli-units in the event and
                // exactly as a gauge.
                if drift.is_finite() {
                    span.field("drift_milli", (drift * 1000.0) as u64);
                    self.metrics.gauge("stream.drift_at_remine", drift);
                }
                self.metrics.incr("stream.remines", 1);
            }
            Err(_) => {
                self.metrics.incr("stream.remine_failures", 1);
            }
        }
        drop(span);
        result
    }

    /// The current window as a [`TransactionDb`] without mining.
    pub fn snapshot(&self) -> TransactionDb {
        TransactionDb::from_transactions(self.window.iter().cloned())
            .with_universe(self.item_counts.len().max(1))
    }
}

/// Sum of per-item drift terms `|count(i)/n - base(i)/base_n|` over the
/// *distinct* union of two canonical (sorted, deduped) item slices — the
/// items whose terms a push invalidates (arrivals ∪ evictions).
fn union_drift_terms(
    a: &[ItemId],
    b: &[ItemId],
    counts: &[u64],
    baseline: &(usize, Vec<u64>),
    n: f64,
) -> f64 {
    let (base_n, base) = baseline;
    let n = n.max(1.0);
    let bn = (*base_n).max(1) as f64;
    let mut i = 0;
    let mut j = 0;
    let mut sum = 0.0;
    loop {
        let item = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x == y {
                    i += 1;
                    j += 1;
                    x
                } else if x < y {
                    i += 1;
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        let cur = counts.get(item as usize).copied().unwrap_or(0) as f64 / n;
        let old = base.get(item as usize).copied().unwrap_or(0) as f64 / bn;
        sum += (cur - old).abs();
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ExecBudget;
    use crate::fpgrowth::fpgrowth;
    use crate::item::Itemset;

    fn miner(capacity: usize) -> SlidingWindowMiner {
        SlidingWindowMiner::new(capacity, MinerConfig::with_min_support(0.5))
    }

    #[test]
    fn push_and_evict_maintain_counts() {
        let mut m = miner(3);
        assert!(m.push([0, 1]).is_none());
        assert!(m.push([0]).is_none());
        assert!(m.push([1, 2]).is_none());
        assert_eq!(m.len(), 3);
        assert_eq!(m.item_count(0), 2);
        // Fourth push evicts the first transaction.
        let evicted = m.push([2]).expect("window full");
        assert_eq!(evicted, vec![0, 1]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.item_count(0), 1);
        assert_eq!(m.item_count(1), 1);
        assert_eq!(m.item_count(2), 2);
    }

    #[test]
    fn incremental_counts_match_snapshot() {
        let mut m = miner(5);
        for i in 0..20u32 {
            m.push([i % 3, (i + 1) % 3]);
        }
        let db = m.snapshot();
        let full = db.item_counts();
        for (item, &count) in full.iter().enumerate() {
            assert_eq!(m.item_count(item as ItemId), count);
        }
    }

    #[test]
    fn mine_matches_batch_on_window() {
        let mut m = miner(4);
        for txn in [vec![0, 1], vec![0, 1], vec![0, 2], vec![1, 2], vec![0, 1]] {
            m.push(txn);
        }
        // Window holds the last four transactions.
        let frequent = m.mine();
        let batch = fpgrowth(&m.snapshot(), &MinerConfig::with_min_support(0.5));
        assert_eq!(frequent.as_slice(), batch.as_slice());
        assert_eq!(frequent.count(&Itemset::from_items([0, 1])), Some(2));
    }

    #[test]
    fn drift_zero_after_mine_grows_with_change() {
        let mut m = miner(8);
        for _ in 0..8 {
            m.push([0, 1]);
        }
        assert!(m.drift().is_infinite(), "no baseline yet");
        m.mine();
        assert_eq!(m.drift(), 0.0);
        // Same distribution keeps drift at zero.
        m.push([0, 1]);
        assert!(m.drift() < 1e-9);
        // A regime change raises it.
        for _ in 0..8 {
            m.push([2, 3]);
        }
        assert!(m.drift() > 1.5, "drift {}", m.drift());
    }

    #[test]
    fn incremental_drift_matches_rescan() {
        // The cache must track the from-scratch recomputation across a
        // mixed push/evict/mine schedule (window at capacity throughout,
        // so the incremental path is the one exercised).
        let mut m = miner(6);
        for i in 0..6u32 {
            m.push([i % 4, (i * 3) % 4]);
        }
        m.mine();
        for i in 0..40u32 {
            m.push([i % 5, (i * 7 + 1) % 5]);
            if i % 11 == 0 {
                m.mine();
            }
            let cached = m.drift();
            let recomputed = {
                let (base_n, base) = m.baseline.as_ref().unwrap();
                let n = m.len().max(1) as f64;
                let bn = (*base_n).max(1) as f64;
                (0..m.item_counts.len().max(base.len()))
                    .map(|j| {
                        let cur = m.item_counts.get(j).copied().unwrap_or(0) as f64 / n;
                        let old = base.get(j).copied().unwrap_or(0) as f64 / bn;
                        (cur - old).abs()
                    })
                    .sum::<f64>()
            };
            assert!(
                (cached - recomputed).abs() < 1e-9,
                "step {i}: cached {cached} != recomputed {recomputed}"
            );
        }
    }

    #[test]
    fn budget_trip_leaves_baseline_and_drift_unchanged() {
        let mut m = miner(4);
        for txn in [vec![0, 1], vec![0, 1], vec![0, 2], vec![1, 2]] {
            m.push(txn);
        }
        m.mine();
        m.push([3, 4]);
        let drift_before = m.drift();
        assert!(drift_before > 0.0);
        // A 0-itemset budget trips on the first emission.
        let budget = ExecBudget {
            max_itemsets: Some(0),
            ..ExecBudget::default()
        };
        let err = m.try_mine(&BudgetGuard::new(&budget)).unwrap_err();
        assert!(matches!(err, MineError::Budget { .. }), "{err}");
        // Baseline untouched: drift still reports the same pending change,
        // and a successful retry mines the identical window.
        assert_eq!(m.drift(), drift_before);
        let frequent = m.try_mine(&BudgetGuard::unlimited()).unwrap();
        let batch = fpgrowth(&m.snapshot(), &MinerConfig::with_min_support(0.5));
        assert_eq!(frequent.as_slice(), batch.as_slice());
        assert_eq!(m.drift(), 0.0);
    }

    #[test]
    fn hot_items_track_threshold() {
        let mut m = miner(4);
        m.push([0, 1]);
        m.push([0, 1]);
        m.push([0]);
        m.push([2]);
        // min_count = ceil(0.5 * 4) = 2.
        assert_eq!(m.hot_items(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "window capacity must be positive")]
    fn zero_capacity_rejected() {
        miner(0);
    }

    #[test]
    fn metrics_record_remines_and_evictions() {
        let metrics = Metrics::enabled();
        let mut m = miner(2).with_metrics(metrics.clone());
        m.push([0, 1]);
        m.push([0, 1]);
        m.mine(); // first mine: no finite drift yet
        m.push([2, 3]); // evicts one transaction
        m.mine();
        let snap = metrics.snapshot();
        assert!(snap.counters.contains(&("stream.evictions".to_string(), 1)));
        assert!(snap.counters.contains(&("stream.remines".to_string(), 2)));
        let remines: Vec<_> = snap
            .stages
            .iter()
            .filter(|e| e.stage == "stream.remine")
            .collect();
        assert_eq!(remines.len(), 2);
        assert_eq!(remines[0].field("window"), Some(2));
        assert_eq!(remines[0].field("drift_milli"), None, "no baseline yet");
        assert!(remines[1].field("drift_milli").unwrap() > 0);
        assert!(snap
            .gauges
            .iter()
            .any(|(name, value)| name == "stream.drift_at_remine" && *value > 0.0));
        // The budgeted path nests the miner's own stages under the
        // remine span, so streaming traces show the build/mine split.
        let remine_id = remines[0].id;
        assert!(snap
            .stages
            .iter()
            .any(|e| e.stage == "mine.tree_build" && e.parent == Some(remine_id)));
    }

    #[test]
    fn failed_remine_counts_but_does_not_increment_remines() {
        let metrics = Metrics::enabled();
        let mut m = miner(2).with_metrics(metrics.clone());
        m.push([0, 1]);
        m.push([0, 1]);
        let budget = ExecBudget {
            max_itemsets: Some(0),
            ..ExecBudget::default()
        };
        assert!(m.try_mine(&BudgetGuard::new(&budget)).is_err());
        let snap = metrics.snapshot();
        assert!(snap
            .counters
            .contains(&("stream.remine_failures".to_string(), 1)));
        assert!(snap.counters.iter().all(|(n, _)| n != "stream.remines"));
    }
}
