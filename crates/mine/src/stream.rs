//! Sliding-window mining over a job stream.
//!
//! The paper's workflow is batch, but its related-work discussion (§VI)
//! notes that the pruning stage composes with streaming miners because it
//! runs after rule generation. This module provides that substrate: a
//! bounded sliding window over arriving transactions with cheap
//! always-current single-item counts, an item-frequency *drift* signal to
//! decide when re-mining is worthwhile, and on-demand full mining of the
//! current window via FP-Growth.

use std::collections::VecDeque;

use irma_obs::Metrics;

use crate::counts::{FrequentItemsets, MinerConfig};
use crate::db::TransactionDb;
use crate::fpgrowth::fpgrowth;
use crate::item::ItemId;

/// A bounded sliding window of transactions with incremental item counts.
#[derive(Debug, Clone)]
pub struct SlidingWindowMiner {
    capacity: usize,
    window: VecDeque<Vec<ItemId>>,
    item_counts: Vec<u64>,
    /// Item counts at the time of the last `mine()` call (drift baseline).
    baseline: Option<(usize, Vec<u64>)>,
    config: MinerConfig,
    metrics: Metrics,
}

impl SlidingWindowMiner {
    /// Creates a miner over a window of at most `capacity` transactions.
    pub fn new(capacity: usize, config: MinerConfig) -> SlidingWindowMiner {
        assert!(capacity > 0, "window capacity must be positive");
        config.validate().expect("invalid miner config");
        SlidingWindowMiner {
            capacity,
            window: VecDeque::with_capacity(capacity),
            item_counts: Vec::new(),
            baseline: None,
            config,
            metrics: Metrics::disabled(),
        }
    }

    /// Attaches a metrics sink: every [`SlidingWindowMiner::mine`] call
    /// then emits a `stream.remine` stage event (window size, itemsets
    /// out, drift at the moment of re-mining in milli-units) and updates
    /// the `stream.evictions` counter as the window slides.
    pub fn with_metrics(mut self, metrics: Metrics) -> SlidingWindowMiner {
        self.metrics = metrics;
        self
    }

    /// Pushes one transaction, evicting the oldest when full. Returns the
    /// evicted transaction, if any.
    pub fn push<I: IntoIterator<Item = ItemId>>(&mut self, txn: I) -> Option<Vec<ItemId>> {
        let mut t: Vec<ItemId> = txn.into_iter().collect();
        t.sort_unstable();
        t.dedup();
        if let Some(&max) = t.last() {
            if max as usize >= self.item_counts.len() {
                self.item_counts.resize(max as usize + 1, 0);
            }
        }
        for &item in &t {
            self.item_counts[item as usize] += 1;
        }
        let evicted = if self.window.len() == self.capacity {
            let old = self.window.pop_front().expect("window full");
            for &item in &old {
                self.item_counts[item as usize] -= 1;
            }
            self.metrics.incr("stream.evictions", 1);
            Some(old)
        } else {
            None
        };
        self.window.push_back(t);
        evicted
    }

    /// Number of transactions currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Current support count of a single item (O(1)).
    pub fn item_count(&self, item: ItemId) -> u64 {
        self.item_counts.get(item as usize).copied().unwrap_or(0)
    }

    /// Items currently above the configured support threshold (O(items)).
    pub fn hot_items(&self) -> Vec<ItemId> {
        let min_count = self.config.min_count(self.window.len());
        self.item_counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(i, _)| i as ItemId)
            .collect()
    }

    /// L1 distance between the current item-frequency distribution and the
    /// one at the last `mine()` call, normalized to `[0, 2]`.
    ///
    /// 0 means unchanged; callers typically re-mine when drift exceeds a
    /// small threshold instead of on every arrival.
    pub fn drift(&self) -> f64 {
        let Some((base_n, base)) = &self.baseline else {
            return f64::INFINITY;
        };
        let n = self.window.len().max(1) as f64;
        let bn = (*base_n).max(1) as f64;
        let len = self.item_counts.len().max(base.len());
        (0..len)
            .map(|i| {
                let cur = self.item_counts.get(i).copied().unwrap_or(0) as f64 / n;
                let old = base.get(i).copied().unwrap_or(0) as f64 / bn;
                (cur - old).abs()
            })
            .sum()
    }

    /// Mines the current window with FP-Growth and resets the drift
    /// baseline.
    pub fn mine(&mut self) -> FrequentItemsets {
        let drift = self.drift();
        let mut span = self.metrics.span("stream.remine");
        let db = TransactionDb::from_transactions(self.window.iter().cloned())
            .with_universe(self.item_counts.len().max(1));
        self.baseline = Some((self.window.len(), self.item_counts.clone()));
        let frequent = fpgrowth(&db, &self.config);
        span.field("window", self.window.len() as u64);
        span.field("itemsets_out", frequent.len() as u64);
        // Drift is a float in [0, 2] (infinite before the first mine);
        // record it as milli-units in the event and exactly as a gauge.
        if drift.is_finite() {
            span.field("drift_milli", (drift * 1000.0) as u64);
            self.metrics.gauge("stream.drift_at_remine", drift);
        }
        self.metrics.incr("stream.remines", 1);
        drop(span);
        frequent
    }

    /// The current window as a [`TransactionDb`] without mining.
    pub fn snapshot(&self) -> TransactionDb {
        TransactionDb::from_transactions(self.window.iter().cloned())
            .with_universe(self.item_counts.len().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Itemset;

    fn miner(capacity: usize) -> SlidingWindowMiner {
        SlidingWindowMiner::new(capacity, MinerConfig::with_min_support(0.5))
    }

    #[test]
    fn push_and_evict_maintain_counts() {
        let mut m = miner(3);
        assert!(m.push([0, 1]).is_none());
        assert!(m.push([0]).is_none());
        assert!(m.push([1, 2]).is_none());
        assert_eq!(m.len(), 3);
        assert_eq!(m.item_count(0), 2);
        // Fourth push evicts the first transaction.
        let evicted = m.push([2]).expect("window full");
        assert_eq!(evicted, vec![0, 1]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.item_count(0), 1);
        assert_eq!(m.item_count(1), 1);
        assert_eq!(m.item_count(2), 2);
    }

    #[test]
    fn incremental_counts_match_snapshot() {
        let mut m = miner(5);
        for i in 0..20u32 {
            m.push([i % 3, (i + 1) % 3]);
        }
        let db = m.snapshot();
        let full = db.item_counts();
        for (item, &count) in full.iter().enumerate() {
            assert_eq!(m.item_count(item as ItemId), count);
        }
    }

    #[test]
    fn mine_matches_batch_on_window() {
        let mut m = miner(4);
        for txn in [vec![0, 1], vec![0, 1], vec![0, 2], vec![1, 2], vec![0, 1]] {
            m.push(txn);
        }
        // Window holds the last four transactions.
        let frequent = m.mine();
        let batch = fpgrowth(&m.snapshot(), &MinerConfig::with_min_support(0.5));
        assert_eq!(frequent.as_slice(), batch.as_slice());
        assert_eq!(frequent.count(&Itemset::from_items([0, 1])), Some(2));
    }

    #[test]
    fn drift_zero_after_mine_grows_with_change() {
        let mut m = miner(8);
        for _ in 0..8 {
            m.push([0, 1]);
        }
        assert!(m.drift().is_infinite(), "no baseline yet");
        m.mine();
        assert_eq!(m.drift(), 0.0);
        // Same distribution keeps drift at zero.
        m.push([0, 1]);
        assert!(m.drift() < 1e-9);
        // A regime change raises it.
        for _ in 0..8 {
            m.push([2, 3]);
        }
        assert!(m.drift() > 1.5, "drift {}", m.drift());
    }

    #[test]
    fn hot_items_track_threshold() {
        let mut m = miner(4);
        m.push([0, 1]);
        m.push([0, 1]);
        m.push([0]);
        m.push([2]);
        // min_count = ceil(0.5 * 4) = 2.
        assert_eq!(m.hot_items(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "window capacity must be positive")]
    fn zero_capacity_rejected() {
        miner(0);
    }

    #[test]
    fn metrics_record_remines_and_evictions() {
        let metrics = Metrics::enabled();
        let mut m = miner(2).with_metrics(metrics.clone());
        m.push([0, 1]);
        m.push([0, 1]);
        m.mine(); // first mine: no finite drift yet
        m.push([2, 3]); // evicts one transaction
        m.mine();
        let snap = metrics.snapshot();
        assert!(snap.counters.contains(&("stream.evictions".to_string(), 1)));
        assert!(snap.counters.contains(&("stream.remines".to_string(), 2)));
        let remines: Vec<_> = snap
            .stages
            .iter()
            .filter(|e| e.stage == "stream.remine")
            .collect();
        assert_eq!(remines.len(), 2);
        assert_eq!(remines[0].field("window"), Some(2));
        assert_eq!(remines[0].field("drift_milli"), None, "no baseline yet");
        assert!(remines[1].field("drift_milli").unwrap() > 0);
        assert!(snap
            .gauges
            .iter()
            .any(|(name, value)| name == "stream.drift_at_remine" && *value > 0.0));
    }
}
