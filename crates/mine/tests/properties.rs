//! Property tests: the three miners are interchangeable, and their output
//! matches a brute-force oracle on small universes.

use proptest::prelude::*;

use irma_mine::{apriori, eclat, fpgrowth, Itemset, MinerConfig, TransactionDb};

/// Random database over a small item universe (so brute force stays cheap).
fn arb_db(max_items: u32, max_txns: usize) -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(
        prop::collection::vec(0..max_items, 0..(max_items as usize + 2)),
        1..max_txns,
    )
    .prop_map(TransactionDb::from_transactions)
}

fn arb_config() -> impl Strategy<Value = MinerConfig> {
    (0.05f64..=1.0, 1usize..=5, any::<bool>()).prop_map(|(min_support, max_len, parallel)| {
        MinerConfig {
            min_support,
            max_len,
            parallel,
        }
    })
}

/// Brute-force frequent itemsets over a universe of <= 16 items.
fn brute_force(db: &TransactionDb, config: &MinerConfig) -> Vec<(Itemset, u64)> {
    let n = db.n_items();
    assert!(n <= 16, "brute force oracle limited to 16 items");
    let min_count = config.min_count(db.len());
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        if (mask.count_ones() as usize) > config.max_len {
            continue;
        }
        let set = Itemset::from_items((0..n as u32).filter(|&i| mask & (1 << i) != 0));
        let count = db.support_count(&set);
        if count >= min_count {
            out.push((set, count));
        }
    }
    out.sort_unstable_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fpgrowth_matches_brute_force(db in arb_db(8, 40), config in arb_config()) {
        let fi = fpgrowth(&db, &config);
        let expected = brute_force(&db, &config);
        prop_assert_eq!(fi.as_slice(), expected.as_slice());
    }

    #[test]
    fn miners_agree(db in arb_db(10, 60), config in arb_config()) {
        let f = fpgrowth(&db, &config);
        let a = apriori(&db, &config);
        let e = eclat(&db, &config);
        prop_assert_eq!(f.as_slice(), a.as_slice());
        prop_assert_eq!(f.as_slice(), e.as_slice());
    }

    #[test]
    fn parallel_equals_sequential(db in arb_db(10, 60), mut config in arb_config()) {
        config.parallel = false;
        let seq = fpgrowth(&db, &config);
        config.parallel = true;
        let par = fpgrowth(&db, &config);
        prop_assert_eq!(seq.as_slice(), par.as_slice());
    }

    #[test]
    fn supports_are_exact(db in arb_db(8, 40), config in arb_config()) {
        let fi = fpgrowth(&db, &config);
        for (set, count) in fi.iter() {
            prop_assert_eq!(*count, db.support_count(set));
            prop_assert!(*count >= config.min_count(db.len()));
            prop_assert!(set.len() <= config.max_len);
        }
    }

    #[test]
    fn downward_closure_holds(db in arb_db(8, 40), config in arb_config()) {
        // Every non-empty subset of a frequent itemset is frequent.
        let fi = fpgrowth(&db, &config);
        for (set, _) in fi.iter() {
            for sub in set.proper_subsets() {
                prop_assert!(
                    fi.count(&sub).is_some(),
                    "subset {} of frequent {} missing", sub, set
                );
            }
        }
    }
}
