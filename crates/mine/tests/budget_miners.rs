//! Budget integration tests: all three miners honour the same
//! `ExecBudget` contract — unlimited guards reproduce the infallible
//! output bit-for-bit, itemset caps and zero deadlines surface as typed
//! breaches, and an injected worker panic in FP-Growth's parallel
//! fan-out is contained into `MineError::WorkerPanic`.

use std::time::Duration;

use irma_mine::{
    apriori, eclat, fpgrowth, try_apriori, try_eclat, try_fpgrowth_with, Algorithm, BudgetBreach,
    BudgetGuard, ExecBudget, MineError, MinerConfig, TransactionDb,
};
use irma_obs::Metrics;

fn textbook_db() -> TransactionDb {
    TransactionDb::from_transactions(vec![
        vec![0, 1],
        vec![1, 2, 3],
        vec![0, 2, 3, 4],
        vec![0, 3, 4],
        vec![0, 1, 2],
        vec![0, 1, 2, 3],
        vec![0],
        vec![0, 1, 2],
        vec![0, 1, 3],
        vec![1, 2, 4],
    ])
}

fn config(parallel: bool) -> MinerConfig {
    MinerConfig {
        min_support: 0.1,
        max_len: 5,
        parallel,
    }
}

#[test]
fn unlimited_guard_matches_infallible_miners() {
    let db = textbook_db();
    for parallel in [false, true] {
        let cfg = config(parallel);
        let guard = BudgetGuard::unlimited();
        let f = try_fpgrowth_with(&db, &cfg, &Metrics::disabled(), &guard).unwrap();
        assert_eq!(f.as_slice(), fpgrowth(&db, &cfg).as_slice());
        let a = try_apriori(&db, &cfg, &guard).unwrap();
        assert_eq!(a.as_slice(), apriori(&db, &cfg).as_slice());
        let e = try_eclat(&db, &cfg, &guard).unwrap();
        assert_eq!(e.as_slice(), eclat(&db, &cfg).as_slice());
    }
}

#[test]
fn itemset_cap_trips_every_miner() {
    let db = textbook_db();
    let budget = ExecBudget {
        max_itemsets: Some(3),
        ..ExecBudget::default()
    };
    for algorithm in Algorithm::all() {
        for parallel in [false, true] {
            let guard = BudgetGuard::new(&budget);
            let err = algorithm
                .try_mine_with(&db, &config(parallel), &Metrics::disabled(), &guard)
                .unwrap_err();
            match err {
                MineError::Budget(BudgetBreach::Itemsets { cap: 3, .. }) => {}
                other => panic!("{}: expected itemset breach, got {other}", algorithm.name()),
            }
        }
    }
}

#[test]
fn zero_deadline_trips_every_miner() {
    let db = textbook_db();
    let budget = ExecBudget {
        deadline: Some(Duration::ZERO),
        ..ExecBudget::default()
    };
    for algorithm in Algorithm::all() {
        let guard = BudgetGuard::new(&budget);
        let err = algorithm
            .try_mine_with(&db, &config(true), &Metrics::disabled(), &guard)
            .unwrap_err();
        assert!(
            matches!(err, MineError::Budget(BudgetBreach::Deadline { .. })),
            "{}: expected deadline breach, got {err}",
            algorithm.name()
        );
    }
}

#[test]
fn tiny_tree_memory_cap_trips_fpgrowth() {
    let db = textbook_db();
    let budget = ExecBudget {
        max_tree_bytes: Some(1),
        ..ExecBudget::default()
    };
    let guard = BudgetGuard::new(&budget);
    let err = try_fpgrowth_with(&db, &config(false), &Metrics::disabled(), &guard).unwrap_err();
    assert!(
        matches!(
            err,
            MineError::Budget(BudgetBreach::TreeMemory { cap: 1, .. })
        ),
        "expected tree-memory breach, got {err}"
    );
}

#[test]
fn injected_worker_panic_is_contained_in_parallel_fpgrowth() {
    let db = textbook_db();
    let budget = ExecBudget {
        panic_after_emits: Some(2),
        ..ExecBudget::default()
    };
    let guard = BudgetGuard::new(&budget);
    let err = try_fpgrowth_with(&db, &config(true), &Metrics::disabled(), &guard).unwrap_err();
    match err {
        MineError::WorkerPanic { message } => {
            assert!(
                message.contains("injected"),
                "unexpected payload: {message}"
            )
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
}

#[test]
fn cancelled_token_stops_all_miners() {
    let db = textbook_db();
    for algorithm in Algorithm::all() {
        let guard = BudgetGuard::unlimited();
        // An unlimited guard's token can still be cancelled externally.
        let guard = BudgetGuard::with_token(&ExecBudget::default(), guard.token().clone());
        guard.token().cancel();
        let err = algorithm
            .try_mine_with(&db, &config(false), &Metrics::disabled(), &guard)
            .unwrap_err();
        assert!(
            matches!(err, MineError::Budget(BudgetBreach::Cancelled)),
            "{}: expected cancellation, got {err}",
            algorithm.name()
        );
    }
}

#[test]
fn generous_budget_changes_nothing() {
    let db = textbook_db();
    let budget = ExecBudget {
        max_itemsets: Some(1_000_000),
        max_tree_bytes: Some(1 << 30),
        deadline: Some(Duration::from_secs(3600)),
        panic_after_emits: None,
    };
    for algorithm in Algorithm::all() {
        let guard = BudgetGuard::new(&budget);
        let bounded = algorithm
            .try_mine_with(&db, &config(true), &Metrics::disabled(), &guard)
            .unwrap();
        let free = algorithm.mine(&db, &config(true));
        assert_eq!(bounded.as_slice(), free.as_slice(), "{}", algorithm.name());
    }
}
