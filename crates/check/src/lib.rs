//! # irma-check — property-based differential testing harness
//!
//! Every later perf or sharding PR regresses against this crate: it pits
//! the fast implementations (FP-Growth, Apriori, Eclat, the sliding-window
//! miner) against brute-force reference oracles on thousands of random
//! inputs, and checks the algebraic invariants of rule metrics, pruning,
//! binning, and the CSV/sacct parsers.
//!
//! The harness is organized as:
//!
//! * [`generators`] — shrinkable random-input strategies (transaction
//!   databases, miner configs, exact-threshold boundary cases, frames,
//!   sacct-shaped frames) shared by all suites;
//! * [`oracle`] — brute-force reference implementations, deliberately
//!   written in the most obvious way possible (enumerate every itemset
//!   mask, count by scanning);
//! * [`flat_prune`] — the pre-trie all-pairs pruning implementation,
//!   preserved as the byte-identical oracle for the trie-driven prune;
//! * [`fault`] — seeded fault-injection plans ([`fault::FaultPlan`]) for
//!   the chaos suite: corrupted CSV text, injected stage panics, forced
//!   budget trips, and failing trace-log writers;
//! * `tests/` — the property suites themselves: `differential` (miners vs
//!   oracle vs each other), `rule_invariants`, `prune_invariants`,
//!   `rule_trie` (trie-driven prune vs the flat oracle, byte-identical),
//!   `binning_invariants`, `roundtrip` (CSV + sacct), `regressions`
//!   (deterministic locks on previously found bugs), and `chaos` (the
//!   fault-tolerance contract of `irma_core::try_analyze`).
//!
//! ## Corpus replay
//!
//! Failing inputs are minimized by the proptest shim's choice-sequence
//! shrinker and persisted under `tests/corpus/<test_name>/<hash>.seed` at
//! the workspace root. Every run replays the stored corpus *before*
//! generating fresh cases, so each once-found bug stays locked in as a
//! deterministic regression. Seeds are plain text (one decimal `u64` draw
//! per line) and are committed to the repository.
//!
//! Case count defaults to 256 per property and can be raised via the
//! `PROPTEST_CASES` environment variable; `PROPTEST_SEED` perturbs the
//! per-test base seed for soak runs.

#![warn(missing_docs)]

pub mod fault;
pub mod flat_prune;
pub mod generators;
pub mod oracle;

use std::path::PathBuf;

use proptest::ProptestConfig;

/// The workspace-root corpus directory (`tests/corpus`).
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// The harness-wide property config: default case count (256, env
/// overridable) with corpus persistence + replay enabled.
pub fn config() -> ProptestConfig {
    ProptestConfig::default().with_corpus(corpus_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_points_at_workspace_corpus() {
        let c = config();
        assert!(c.cases >= 1);
        let dir = c.corpus_dir.expect("corpus enabled");
        assert!(dir.ends_with("tests/corpus"));
    }
}
