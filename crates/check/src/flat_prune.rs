//! The flat all-pairs pruning oracle.
//!
//! This is the pre-trie `prune_rules_inner` implementation, preserved
//! verbatim (modulo using `irma_rules`' public types) as the differential
//! oracle for the trie-driven prune: same keyword filter, same canonical
//! sort, same per-group `(i asc, j > i asc)` pair enumeration with inline
//! proper-subset tests, same marking semantics and provenance calls. The
//! `rule_trie` suite asserts `irma_rules::prune_rules_traced` matches
//! this function byte-for-byte — kept set, `PruneRecord` sequence, and
//! provenance records — at every pool width.

use std::collections::HashMap;

use irma_mine::{ItemId, Itemset};
use irma_obs::Provenance;
use irma_rules::{PruneCondition, PruneOutcome, PruneParams, PruneRecord, Rule, RuleRole};

/// Prunes `rules` for `keyword` with the flat all-pairs reference
/// implementation. Panics on invalid `params` (like the paper-path entry
/// point it mirrors).
pub fn flat_prune_rules(
    rules: &[Rule],
    keyword: ItemId,
    params: &PruneParams,
    provenance: &Provenance,
) -> PruneOutcome {
    params.validate().expect("invalid prune params");

    let mut relevant: Vec<Rule> = rules
        .iter()
        .filter(|r| r.role(keyword) != RuleRole::Unrelated)
        .cloned()
        .collect();
    relevant.sort_unstable_by(|a, b| {
        a.antecedent
            .cmp(&b.antecedent)
            .then_with(|| a.consequent.cmp(&b.consequent))
    });

    let mut alive = vec![true; relevant.len()];
    let mut pruned: Vec<PruneRecord> = Vec::new();

    for condition in PruneCondition::all() {
        apply_condition(
            condition,
            &relevant,
            keyword,
            params,
            &mut alive,
            &mut pruned,
            provenance,
        );
    }

    if provenance.is_enabled() {
        for (rule, &is_alive) in relevant.iter().zip(&alive) {
            provenance.mark_kept(&rule.provenance_info(), is_alive);
        }
    }

    let kept: Vec<Rule> = relevant
        .iter()
        .zip(&alive)
        .filter(|(_, &a)| a)
        .map(|(r, _)| r.clone())
        .collect();
    PruneOutcome { kept, pruned }
}

/// Groups rule indices by a side and applies one condition within groups.
#[allow(clippy::too_many_arguments)]
fn apply_condition(
    condition: PruneCondition,
    rules: &[Rule],
    keyword: ItemId,
    params: &PruneParams,
    alive: &mut [bool],
    pruned: &mut Vec<PruneRecord>,
    provenance: &Provenance,
) {
    // Conditions 1 and 4 compare rules sharing a consequent; 2 and 3 share
    // an antecedent.
    let group_by_consequent = matches!(
        condition,
        PruneCondition::Condition1 | PruneCondition::Condition4
    );
    let mut groups: HashMap<&Itemset, Vec<usize>> = HashMap::new();
    for (i, rule) in rules.iter().enumerate() {
        let key = if group_by_consequent {
            &rule.consequent
        } else {
            &rule.antecedent
        };
        groups.entry(key).or_default().push(i);
    }
    let mut ordered_groups: Vec<(&Itemset, Vec<usize>)> = groups.into_iter().collect();
    ordered_groups.sort_unstable_by(|a, b| a.0.cmp(b.0));

    for (_, members) in ordered_groups {
        for (a_pos, &i) in members.iter().enumerate() {
            for &j in &members[a_pos + 1..] {
                // Establish nesting: `short` has the varying side strictly
                // contained in `long`'s.
                let (short, long) = if group_by_consequent {
                    if rules[i]
                        .antecedent
                        .is_proper_subset_of(&rules[j].antecedent)
                    {
                        (i, j)
                    } else if rules[j]
                        .antecedent
                        .is_proper_subset_of(&rules[i].antecedent)
                    {
                        (j, i)
                    } else {
                        continue;
                    }
                } else if rules[i]
                    .consequent
                    .is_proper_subset_of(&rules[j].consequent)
                {
                    (i, j)
                } else if rules[j]
                    .consequent
                    .is_proper_subset_of(&rules[i].consequent)
                {
                    (j, i)
                } else {
                    continue;
                };

                match decide(condition, &rules[short], &rules[long], keyword, params) {
                    Verdict::Prune(decision) => {
                        let (loser_idx, winner_idx) = if decision.loser == Loser::Short {
                            (short, long)
                        } else {
                            (long, short)
                        };
                        if provenance.is_enabled() {
                            provenance.record_decision(
                                condition.number(),
                                decision.branch,
                                decision.margin,
                                &render_detail(
                                    condition,
                                    &decision,
                                    &rules[short],
                                    &rules[long],
                                    params,
                                ),
                                &rules[winner_idx].provenance_info(),
                                &rules[loser_idx].provenance_info(),
                                alive[loser_idx],
                            );
                        }
                        // Marking semantics: the winner prunes even if it was
                        // itself pruned earlier; record each loss once.
                        if alive[loser_idx] {
                            alive[loser_idx] = false;
                            pruned.push(PruneRecord {
                                rule: rules[loser_idx].clone(),
                                condition,
                                dominated_by: rules[winner_idx].key(),
                            });
                        }
                    }
                    Verdict::Undecided => {
                        if provenance.is_enabled() {
                            provenance.record_undecided(
                                &rules[short].provenance_info(),
                                &rules[long].provenance_info(),
                            );
                        }
                    }
                    Verdict::NotApplicable => {}
                }
            }
        }
    }
}

/// Which of the nested pair a condition removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loser {
    Short,
    Long,
}

/// A firing condition: who loses, decided by which comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Decision {
    loser: Loser,
    branch: &'static str,
    margin: f64,
}

/// Outcome of evaluating one condition for a nested pair.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Verdict {
    NotApplicable,
    Undecided,
    Prune(Decision),
}

/// Evaluates one condition for a nested pair (the paper's branch order).
fn decide(
    condition: PruneCondition,
    short: &Rule,
    long: &Rule,
    keyword: ItemId,
    params: &PruneParams,
) -> Verdict {
    let (c_lift, c_supp) = (params.c_lift, params.c_supp);
    let prune = |loser, branch, margin| {
        Verdict::Prune(Decision {
            loser,
            branch,
            margin,
        })
    };
    match condition {
        PruneCondition::Condition1 => {
            if !short.consequent.contains(keyword) {
                return Verdict::NotApplicable;
            }
            if c_lift * short.lift >= long.lift {
                prune(Loser::Long, "lift", c_lift)
            } else if c_supp * long.support >= short.support {
                prune(Loser::Short, "support", c_supp)
            } else {
                Verdict::Undecided
            }
        }
        PruneCondition::Condition2 => {
            if !short.antecedent.contains(keyword) {
                return Verdict::NotApplicable;
            }
            if c_lift * long.lift >= short.lift && c_supp * long.support >= short.support {
                prune(Loser::Short, "lift+support", c_lift)
            } else if c_lift * long.lift < short.lift {
                prune(Loser::Long, "lift", c_lift)
            } else {
                Verdict::Undecided
            }
        }
        PruneCondition::Condition3 => {
            if !(short.consequent.contains(keyword) && long.consequent.contains(keyword)) {
                return Verdict::NotApplicable;
            }
            if c_lift * short.lift >= long.lift {
                prune(Loser::Long, "lift", c_lift)
            } else {
                Verdict::Undecided
            }
        }
        PruneCondition::Condition4 => {
            if !(short.antecedent.contains(keyword) && long.antecedent.contains(keyword)) {
                return Verdict::NotApplicable;
            }
            if c_lift * short.lift >= long.lift {
                prune(Loser::Long, "lift", c_lift)
            } else {
                Verdict::Undecided
            }
        }
    }
}

/// Renders the comparison a firing decision actually evaluated (must stay
/// character-identical to `irma_rules`' private `render_detail`).
fn render_detail(
    condition: PruneCondition,
    decision: &Decision,
    short: &Rule,
    long: &Rule,
    params: &PruneParams,
) -> String {
    let (c_lift, c_supp) = (params.c_lift, params.c_supp);
    match (condition, decision.branch) {
        (PruneCondition::Condition2, "lift+support") => format!(
            "C_lift x lift(long) = {:.2} x {:.4} = {:.4} >= lift(short) = {:.4} and \
             C_supp x supp(long) = {:.2} x {:.4} = {:.4} >= supp(short) = {:.4}",
            c_lift,
            long.lift,
            c_lift * long.lift,
            short.lift,
            c_supp,
            long.support,
            c_supp * long.support,
            short.support
        ),
        (PruneCondition::Condition2, _) => format!(
            "C_lift x lift(long) = {:.2} x {:.4} = {:.4} < lift(short) = {:.4}",
            c_lift,
            long.lift,
            c_lift * long.lift,
            short.lift
        ),
        (PruneCondition::Condition1, "support") => format!(
            "C_supp x supp(long) = {:.2} x {:.4} = {:.4} >= supp(short) = {:.4}",
            c_supp,
            long.support,
            c_supp * long.support,
            short.support
        ),
        (_, _) => format!(
            "C_lift x lift(short) = {:.2} x {:.4} = {:.4} >= lift(long) = {:.4}",
            c_lift,
            short.lift,
            c_lift * short.lift,
            long.lift
        ),
    }
}
