//! Deterministic fault-injection plans for the chaos property suite.
//!
//! A [`FaultPlan`] is a seeded description of everything that can go
//! wrong around one `irma_core::try_analyze` run: corrupted CSV input
//! (truncation, garbled bytes, NaN/Inf cells), an injected panic inside
//! a pipeline stage (via [`irma_core::StageHooks`]), a forced budget
//! trip (via [`irma_core::ExecBudget`], including the poisoned-worker
//! injection), and a trace-log sink whose writer starts failing
//! mid-run. Everything derives from a single `u64` seed through a local
//! SplitMix64, so a failing chaos case is reproducible from its seed
//! alone — no `rand` dependency, no global state.
//!
//! The plans themselves know nothing about assertions; the property
//! suite in `tests/chaos.rs` drives them and checks the fault-tolerance
//! contract (no panic escapes, every failure is typed, degraded results
//! always say so).

use std::io::{self, Write};

use irma_core::{ExecBudget, StageHooks};
use irma_obs::EventSink;
use irma_prep::{EncoderSpec, FeatureSpec, ZeroBin};
use std::time::Duration;

/// A tiny deterministic RNG (SplitMix64). Good enough statistical
/// quality for fuzzing decisions, trivially seedable, and — unlike the
/// proptest strategies — usable outside a property-runner context.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A generator whose whole stream is determined by `seed`.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed }
    }

    /// The next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A draw uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `percent / 100`.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// How a plan corrupts the raw CSV text before parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFault {
    /// Cut the text off at a random byte offset (mid-row, mid-field).
    Truncate,
    /// Overwrite a few random bytes with CSV-hostile junk (quotes,
    /// commas, control characters).
    Garble,
    /// Replace random numeric cells in data rows with `NaN`/`inf`
    /// tokens. The lossy value parser and the preprocessing non-finite
    /// filter are supposed to absorb these without failing.
    NanInf,
}

/// Which execution-budget trip a plan forces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetFault {
    /// A small itemset cap — trips mining, exercising the ladder.
    ItemsetCap(u64),
    /// A tiny estimated-tree-memory cap (FP-Growth only trips it).
    TreeByteCap(u64),
    /// A zero wall-clock deadline — deterministically exhausts the
    /// ladder (retries share the run-wide token).
    ZeroDeadline,
    /// Panic inside the mining recursion after this many emitted
    /// itemsets (the poisoned-worker injection).
    WorkerPanic(u64),
}

/// One seeded chaos scenario. Faults compose: a plan may corrupt the
/// input *and* cap the budget *and* break the trace-log writer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The seed every decision below was derived from.
    pub seed: u64,
    /// Input-text corruption, if any.
    pub input: Option<InputFault>,
    /// Stage to panic at entry (`"encode"`, `"mine"`, or `"rules"`).
    pub stage_panic: Option<&'static str>,
    /// Forced budget trip, if any.
    pub budget: Option<BudgetFault>,
    /// Whether the trace-log sink's writer fails after a few bytes.
    pub failing_sink: bool,
    /// Whether the mining stage runs its parallel path.
    pub parallel: bool,
}

impl FaultPlan {
    /// A plan that injects nothing — the differential baseline.
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            parallel: FaultRng::new(seed).chance(50),
            ..FaultPlan::default()
        }
    }

    /// Derives a full plan from `seed`. Roughly half of all seeds carry
    /// at least one fault in each dimension, and combinations are
    /// common on purpose: the contract must hold for overlapping
    /// failures, not just isolated ones.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = FaultRng::new(seed);
        let parallel = rng.chance(50);
        let input = if rng.chance(40) {
            Some(match rng.below(3) {
                0 => InputFault::Truncate,
                1 => InputFault::Garble,
                _ => InputFault::NanInf,
            })
        } else {
            None
        };
        let stage_panic = if rng.chance(15) {
            Some(match rng.below(3) {
                0 => "encode",
                1 => "mine",
                _ => "rules",
            })
        } else {
            None
        };
        let budget = if rng.chance(35) {
            Some(match rng.below(4) {
                0 => BudgetFault::ItemsetCap(1 + rng.below(12)),
                1 => BudgetFault::TreeByteCap(1 + rng.below(256)),
                2 => BudgetFault::ZeroDeadline,
                _ => BudgetFault::WorkerPanic(1 + rng.below(4)),
            })
        } else {
            None
        };
        let failing_sink = rng.chance(30);
        FaultPlan {
            seed,
            input,
            stage_panic,
            budget,
            failing_sink,
            parallel,
        }
    }

    /// Whether this plan injects nothing at all.
    pub fn is_clean(&self) -> bool {
        self.input.is_none()
            && self.stage_panic.is_none()
            && self.budget.is_none()
            && !self.failing_sink
    }

    /// Applies the plan's input fault to `csv`, deterministically from
    /// the plan seed. Clean plans return the text unchanged.
    pub fn apply_to_csv(&self, csv: &str) -> String {
        let mut rng = FaultRng::new(self.seed ^ 0xc5a1_1ed0);
        match self.input {
            None => csv.to_string(),
            Some(InputFault::Truncate) => {
                if csv.is_empty() {
                    return String::new();
                }
                let mut cut = rng.below(csv.len() as u64) as usize;
                while !csv.is_char_boundary(cut) {
                    cut -= 1;
                }
                csv[..cut].to_string()
            }
            Some(InputFault::Garble) => {
                const JUNK: &[u8] = b"\"',;\x00\x01%$@~\\";
                let mut bytes = csv.as_bytes().to_vec();
                if bytes.is_empty() {
                    return String::new();
                }
                let hits = 1 + rng.below(4) as usize;
                for _ in 0..hits {
                    let at = rng.below(bytes.len() as u64) as usize;
                    bytes[at] = JUNK[rng.below(JUNK.len() as u64) as usize];
                }
                // JUNK is pure ASCII, so overwriting single bytes of a
                // UTF-8 ASCII document keeps it valid UTF-8.
                String::from_utf8_lossy(&bytes).into_owned()
            }
            Some(InputFault::NanInf) => {
                const TOKENS: [&str; 4] = ["NaN", "nan", "inf", "-inf"];
                let mut out = String::with_capacity(csv.len());
                for (i, line) in csv.lines().enumerate() {
                    // Never corrupt the header: the contract for NaN/Inf
                    // is "absorbed by the value parser", not "missing
                    // column".
                    if i == 0 || line.is_empty() || !rng.chance(40) {
                        out.push_str(line);
                    } else {
                        let fields: Vec<&str> = line.split(',').collect();
                        let victim = rng.below(fields.len() as u64) as usize;
                        let token = TOKENS[rng.below(TOKENS.len() as u64) as usize];
                        for (j, field) in fields.iter().enumerate() {
                            if j > 0 {
                                out.push(',');
                            }
                            out.push_str(if j == victim { token } else { field });
                        }
                    }
                    out.push('\n');
                }
                out
            }
        }
    }

    /// The execution budget this plan forces (unlimited when no budget
    /// fault is planned).
    pub fn exec_budget(&self) -> ExecBudget {
        match self.budget {
            None => ExecBudget::unlimited(),
            Some(BudgetFault::ItemsetCap(cap)) => ExecBudget {
                max_itemsets: Some(cap),
                ..ExecBudget::default()
            },
            Some(BudgetFault::TreeByteCap(cap)) => ExecBudget {
                max_tree_bytes: Some(cap),
                ..ExecBudget::default()
            },
            Some(BudgetFault::ZeroDeadline) => ExecBudget {
                deadline: Some(Duration::ZERO),
                ..ExecBudget::default()
            },
            Some(BudgetFault::WorkerPanic(after)) => ExecBudget {
                panic_after_emits: Some(after),
                ..ExecBudget::default()
            },
        }
    }

    /// Stage hooks that panic on entry to the planned stage (and fire
    /// nothing when no stage panic is planned).
    pub fn stage_hooks(&self) -> StageHooks {
        match self.stage_panic {
            None => StageHooks::default(),
            Some(stage) => StageHooks::on_stage(move |s: &str| {
                if s == stage {
                    panic!("injected {stage} fault");
                }
            }),
        }
    }
}

/// An `io::Write` that accepts `budget` bytes and then fails every
/// write — the trace-log equivalent of a full disk. `flush` always
/// succeeds so each failure is attributed to exactly one event write.
#[derive(Debug)]
pub struct FailingWriter {
    budget: usize,
    written: usize,
}

impl FailingWriter {
    /// A writer that fails once `budget` bytes have been accepted.
    pub fn after_bytes(budget: usize) -> FailingWriter {
        FailingWriter { budget, written: 0 }
    }
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.written + buf.len() > self.budget {
            return Err(io::Error::other("injected sink failure (disk full)"));
        }
        self.written += buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An [`EventSink`] over a [`FailingWriter`].
pub fn failing_event_sink(after_bytes: usize) -> EventSink {
    EventSink::from_writer(Box::new(FailingWriter::after_bytes(after_bytes)))
}

/// A small seeded trace CSV: two behavioural clusters (short idle jobs
/// vs long busy ones) plus per-row jitter, so every un-faulted run
/// mines a non-trivial frequent family and at least one rule.
pub fn base_csv(seed: u64, rows: usize) -> String {
    let mut rng = FaultRng::new(seed ^ 0x0ba5_ec5f);
    let mut csv = String::from("runtime,sm\n");
    for i in 0..rows {
        let idle = i % 5 < 2;
        let jitter = rng.below(100) as f64 / 10.0;
        let (runtime, sm) = if idle {
            (10.0 + jitter, 0.0)
        } else {
            (5_000.0 + jitter * 40.0, 60.0 + rng.below(30) as f64)
        };
        csv.push_str(&format!("{runtime},{sm}\n"));
    }
    csv
}

/// The encoder spec matching [`base_csv`].
pub fn base_spec() -> EncoderSpec {
    EncoderSpec::new(vec![
        FeatureSpec::numeric("runtime", "Runtime"),
        FeatureSpec::numeric_zero("sm", "SM Util", ZeroBin::percent()),
    ])
}

/// A socket-level client misbehaviour for chaos-testing an HTTP server.
///
/// Each variant is one way a real network peer goes wrong. The drivers
/// ([`run_socket_fault`]) execute them against a live address and report
/// what came back; they know nothing about the server under test, so the
/// suite in `tests/chaos_serve.rs` owns all assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketFault {
    /// Dribble a request head a few bytes at a time with pauses, then
    /// hang up before finishing it (the slow-loris shape, bounded).
    SlowLoris {
        /// Bytes sent per dribble.
        chunk: usize,
        /// Pause between dribbles, in milliseconds.
        pause_ms: u64,
        /// Dribbles before hanging up.
        rounds: usize,
    },
    /// Declare a `Content-Length` and disconnect mid-body.
    MidBodyDisconnect {
        /// Declared body length.
        declared: usize,
        /// Bytes actually sent before the hangup.
        sent: usize,
    },
    /// Send a valid request but read only a prefix of the response and
    /// slam the connection shut.
    PartialResponseRead {
        /// Response bytes to read before closing.
        read_bytes: usize,
    },
    /// Send seeded binary junk where a request line belongs.
    GarbageRequestLine {
        /// Junk length in bytes.
        len: usize,
    },
    /// POST a body larger than the server's configured cap (the body is
    /// fully sent; the server should answer 413 from the declared
    /// length without reading it all).
    OversizedBody {
        /// Body size to declare and send.
        bytes: usize,
    },
    /// Send a request head past the 8 KiB cap (expects 431 back).
    OversizedHead {
        /// Padding-header value length.
        padding: usize,
    },
}

impl SocketFault {
    /// Derives one socket fault from a seed, covering every variant
    /// across consecutive seeds.
    pub fn from_seed(seed: u64) -> SocketFault {
        let mut rng = FaultRng::new(seed ^ 0x50c4_e7fa);
        match rng.below(6) {
            0 => SocketFault::SlowLoris {
                chunk: 1 + rng.below(4) as usize,
                pause_ms: 5 + rng.below(20),
                rounds: 2 + rng.below(4) as usize,
            },
            1 => SocketFault::MidBodyDisconnect {
                declared: 256 + rng.below(1024) as usize,
                sent: rng.below(128) as usize,
            },
            2 => SocketFault::PartialResponseRead {
                read_bytes: 1 + rng.below(16) as usize,
            },
            3 => SocketFault::GarbageRequestLine {
                len: 1 + rng.below(512) as usize,
            },
            4 => SocketFault::OversizedBody {
                bytes: 2048 + rng.below(2048) as usize,
            },
            _ => SocketFault::OversizedHead {
                padding: 9 * 1024 + rng.below(4096) as usize,
            },
        }
    }
}

/// What a socket-fault driver observed from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketOutcome {
    /// The server answered with this HTTP status.
    Status(u16),
    /// The connection closed with no (parseable) status — fine for
    /// faults where the client hung up first.
    Dropped,
    /// The connection could not even be established.
    ConnectFailed,
}

fn parse_status(response: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(response.get(..response.len().min(64))?).ok()?;
    let mut words = text.split_whitespace();
    if !words.next()?.starts_with("HTTP/1.") {
        return None;
    }
    words.next()?.parse().ok()
}

fn read_status(stream: &mut std::net::TcpStream) -> SocketOutcome {
    use std::io::Read;
    let mut buf = Vec::new();
    match stream.read_to_end(&mut buf) {
        Ok(_) | Err(_) => {}
    }
    match parse_status(&buf) {
        Some(status) => SocketOutcome::Status(status),
        None => SocketOutcome::Dropped,
    }
}

/// Executes one [`SocketFault`] against a live server and reports what
/// came back. Every driver bounds its own runtime (socket timeouts plus
/// finite writes), so a wedged server shows up as a test timeout at the
/// suite level, not a hang here.
pub fn run_socket_fault(addr: std::net::SocketAddr, fault: &SocketFault) -> SocketOutcome {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let Ok(mut stream) = TcpStream::connect(addr) else {
        return SocketOutcome::ConnectFailed;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    match fault {
        SocketFault::SlowLoris {
            chunk,
            pause_ms,
            rounds,
        } => {
            let head = b"POST /v1/analyze HTTP/1.1\r\nhost: chaos\r\ncontent-length: 64\r\n";
            let mut sent = 0;
            for _ in 0..*rounds {
                if sent >= head.len() {
                    break;
                }
                let end = (sent + chunk).min(head.len());
                if stream.write_all(&head[sent..end]).is_err() {
                    return SocketOutcome::Dropped;
                }
                sent = end;
                std::thread::sleep(Duration::from_millis(*pause_ms));
            }
            // Hang up with the head unfinished.
            SocketOutcome::Dropped
        }
        SocketFault::MidBodyDisconnect { declared, sent } => {
            let head = format!(
                "POST /v1/analyze HTTP/1.1\r\nhost: chaos\r\ncontent-length: {declared}\r\n\r\n"
            );
            if stream.write_all(head.as_bytes()).is_err() {
                return SocketOutcome::Dropped;
            }
            let body = vec![b'x'; (*sent).min(*declared)];
            let _ = stream.write_all(&body);
            // Close with the body short; the server must drop cleanly.
            SocketOutcome::Dropped
        }
        SocketFault::PartialResponseRead { read_bytes } => {
            if stream
                .write_all(b"GET /healthz HTTP/1.1\r\nhost: chaos\r\n\r\n")
                .is_err()
            {
                return SocketOutcome::Dropped;
            }
            let mut buf = vec![0u8; *read_bytes];
            let _ = stream.read_exact(&mut buf);
            // Drop with (most of) the response unread.
            SocketOutcome::Dropped
        }
        SocketFault::GarbageRequestLine { len } => {
            let mut rng = FaultRng::new(*len as u64 ^ 0x6a5b);
            let junk: Vec<u8> = (0..*len).map(|_| (rng.below(256)) as u8).collect();
            if stream.write_all(&junk).is_err() {
                return SocketOutcome::Dropped;
            }
            if stream.write_all(b"\r\n\r\n").is_err() {
                return SocketOutcome::Dropped;
            }
            let _ = stream.shutdown(std::net::Shutdown::Write);
            read_status(&mut stream)
        }
        SocketFault::OversizedBody { bytes } => {
            let head = format!(
                "POST /v1/analyze HTTP/1.1\r\nhost: chaos\r\ncontent-length: {bytes}\r\n\r\n"
            );
            if stream.write_all(head.as_bytes()).is_err() {
                return SocketOutcome::Dropped;
            }
            let body = vec![b'a'; *bytes];
            let _ = stream.write_all(&body);
            let _ = stream.shutdown(std::net::Shutdown::Write);
            read_status(&mut stream)
        }
        SocketFault::OversizedHead { padding } => {
            let head = format!(
                "GET /healthz HTTP/1.1\r\nhost: chaos\r\nx-pad: {}\r\n\r\n",
                "p".repeat(*padding)
            );
            if stream.write_all(head.as_bytes()).is_err() {
                return SocketOutcome::Dropped;
            }
            read_status(&mut stream)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        for seed in 0..200 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
        let csv = base_csv(7, 30);
        let plan = FaultPlan {
            input: Some(InputFault::Garble),
            ..FaultPlan::from_seed(9)
        };
        assert_eq!(plan.apply_to_csv(&csv), plan.apply_to_csv(&csv));
    }

    #[test]
    fn seeds_cover_every_fault_dimension() {
        let plans: Vec<FaultPlan> = (0..500).map(FaultPlan::from_seed).collect();
        assert!(plans.iter().any(|p| p.input == Some(InputFault::Truncate)));
        assert!(plans.iter().any(|p| p.input == Some(InputFault::Garble)));
        assert!(plans.iter().any(|p| p.input == Some(InputFault::NanInf)));
        assert!(plans.iter().any(|p| p.stage_panic == Some("encode")));
        assert!(plans.iter().any(|p| p.stage_panic == Some("mine")));
        assert!(plans.iter().any(|p| p.stage_panic == Some("rules")));
        assert!(plans
            .iter()
            .any(|p| matches!(p.budget, Some(BudgetFault::ItemsetCap(_)))));
        assert!(plans
            .iter()
            .any(|p| matches!(p.budget, Some(BudgetFault::ZeroDeadline))));
        assert!(plans
            .iter()
            .any(|p| matches!(p.budget, Some(BudgetFault::WorkerPanic(_)))));
        assert!(plans.iter().any(|p| p.failing_sink));
        assert!(plans.iter().any(|p| p.is_clean()));
    }

    #[test]
    fn clean_plans_leave_the_text_alone() {
        let csv = base_csv(1, 25);
        assert_eq!(FaultPlan::clean(1).apply_to_csv(&csv), csv);
    }

    #[test]
    fn truncation_shortens_and_stays_utf8() {
        let csv = base_csv(2, 25);
        let plan = FaultPlan {
            input: Some(InputFault::Truncate),
            ..FaultPlan::clean(2)
        };
        let cut = plan.apply_to_csv(&csv);
        assert!(cut.len() < csv.len());
    }

    #[test]
    fn nan_inf_corruption_spares_the_header() {
        let csv = base_csv(3, 40);
        let plan = FaultPlan {
            input: Some(InputFault::NanInf),
            ..FaultPlan::clean(3)
        };
        let poisoned = plan.apply_to_csv(&csv);
        assert!(poisoned.starts_with("runtime,sm\n"));
        let lowered = poisoned.to_lowercase();
        assert!(lowered.contains("nan") || lowered.contains("inf"));
    }

    #[test]
    fn failing_writer_fails_past_its_byte_budget() {
        let mut w = FailingWriter::after_bytes(4);
        assert_eq!(w.write(b"ab").unwrap(), 2);
        assert_eq!(w.write(b"cd").unwrap(), 2);
        assert!(w.write(b"e").is_err());
        assert!(w.flush().is_ok());
    }

    #[test]
    fn socket_faults_cover_every_variant_and_stay_deterministic() {
        let faults: Vec<SocketFault> = (0..200).map(SocketFault::from_seed).collect();
        assert!(faults
            .iter()
            .any(|f| matches!(f, SocketFault::SlowLoris { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, SocketFault::MidBodyDisconnect { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, SocketFault::PartialResponseRead { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, SocketFault::GarbageRequestLine { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, SocketFault::OversizedBody { .. })));
        assert!(faults
            .iter()
            .any(|f| matches!(f, SocketFault::OversizedHead { .. })));
        for seed in 0..50 {
            assert_eq!(SocketFault::from_seed(seed), SocketFault::from_seed(seed));
        }
    }

    #[test]
    fn status_parser_reads_the_first_line_only() {
        assert_eq!(
            parse_status(b"HTTP/1.1 503 Service Unavailable\r\n"),
            Some(503)
        );
        assert_eq!(parse_status(b"HTTP/1.0 200 OK\r\nbody"), Some(200));
        assert_eq!(parse_status(b"not http at all"), None);
        assert_eq!(parse_status(b""), None);
    }

    #[test]
    fn exec_budget_maps_each_fault() {
        assert!(FaultPlan::clean(0).exec_budget().is_unlimited());
        let cap = FaultPlan {
            budget: Some(BudgetFault::ItemsetCap(3)),
            ..FaultPlan::clean(0)
        };
        assert_eq!(cap.exec_budget().max_itemsets, Some(3));
        let dl = FaultPlan {
            budget: Some(BudgetFault::ZeroDeadline),
            ..FaultPlan::clean(0)
        };
        assert_eq!(dl.exec_budget().deadline, Some(Duration::ZERO));
    }
}
