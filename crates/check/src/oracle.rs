//! Brute-force reference implementations.
//!
//! Written in the most obvious way possible — enumerate every itemset
//! mask, count support by scanning every transaction — so that agreement
//! with the fast miners constitutes real evidence. Exponential in the
//! universe size, hence the [`MAX_ORACLE_ITEMS`] cap.

use irma_mine::{Itemset, MinerConfig, TransactionDb};

/// Largest universe the mask-enumeration oracle accepts (`2^16` masks).
pub const MAX_ORACLE_ITEMS: usize = 16;

/// Every frequent itemset with its support count, in the miners'
/// canonical order (by length, then lexicographically).
///
/// Uses the same [`MinerConfig::min_count`] threshold the miners apply,
/// so disagreements localize to the search itself rather than threshold
/// arithmetic (which has its own exact-integer grid test).
pub fn frequent_itemsets(db: &TransactionDb, config: &MinerConfig) -> Vec<(Itemset, u64)> {
    let n = db.n_items();
    assert!(
        n <= MAX_ORACLE_ITEMS,
        "brute-force oracle limited to {MAX_ORACLE_ITEMS} items, got {n}"
    );
    let min_count = config.min_count(db.len());
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << n) {
        if (mask.count_ones() as usize) > config.max_len {
            continue;
        }
        let set = Itemset::from_items((0..n as u32).filter(|&i| mask & (1 << i) != 0));
        let count = db.support_count(&set);
        if count >= min_count {
            out.push((set, count));
        }
    }
    out.sort_unstable_by(|a, b| a.0.len().cmp(&b.0.len()).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_on_known_db() {
        let db =
            TransactionDb::from_transactions(vec![vec![0, 1], vec![0, 1], vec![0, 2], vec![1]]);
        let frequent = frequent_itemsets(&db, &MinerConfig::with_min_support(0.5));
        // min_count = 2: {0}=3, {1}=3, {0,1}=2.
        let rendered: Vec<(Vec<u32>, u64)> = frequent
            .iter()
            .map(|(s, c)| (s.items().to_vec(), *c))
            .collect();
        assert_eq!(rendered, vec![(vec![0], 3), (vec![1], 3), (vec![0, 1], 2)]);
    }

    #[test]
    #[should_panic(expected = "brute-force oracle limited")]
    fn oracle_rejects_large_universe() {
        let db = TransactionDb::from_transactions(vec![vec![0u32, 20]]);
        frequent_itemsets(&db, &MinerConfig::default());
    }
}
