//! Shrinkable input generators shared by the differential suites.
//!
//! All strategies bottom out in the proptest shim's recorded choice
//! sequence, so a failing case shrinks toward fewer transactions, fewer
//! items, smaller values, and threshold boundaries automatically.

use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;
use proptest::string::string_regex;

use irma_data::{Column, Frame};
use irma_mine::{MinerConfig, TransactionDb};

/// Random database over a small item universe (so brute force stays
/// cheap: the oracle enumerates `2^max_items` masks).
pub fn arb_transaction_db(max_items: u32, max_txns: usize) -> impl Strategy<Value = TransactionDb> {
    vec(vec(0..max_items, 0..(max_items as usize + 2)), 1..max_txns)
        .prop_map(TransactionDb::from_transactions)
}

/// Miner config over the full parameter space the workspace uses:
/// percentage-grid support thresholds (what the paper writes: 5%, 7%, …),
/// itemset length caps 1–5, and both execution modes.
pub fn arb_miner_config() -> impl Strategy<Value = MinerConfig> {
    (1..=100u64, 1usize..=5, any::<bool>()).prop_map(|(pct, max_len, parallel)| MinerConfig {
        min_support: pct as f64 / 100.0,
        max_len,
        parallel,
    })
}

/// A boundary case for the support threshold: item 0 occurs in *exactly*
/// `ceil(pct/100 × n)` of the `n` transactions, i.e. precisely at the
/// configured minimum. Returns `(db, config, expected_count)`; a correct
/// miner must report `{0}` as frequent with that exact count. This is the
/// input family on which the pre-fix `MinerConfig::min_count` float
/// off-by-one excluded threshold-sitting items.
pub fn arb_exact_threshold_case() -> impl Strategy<Value = (TransactionDb, MinerConfig, u64)> {
    (1..=100u64, 1..=200usize).prop_map(|(pct, n)| {
        let at_threshold = (pct as usize * n).div_ceil(100).max(1);
        let txns: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                if i < at_threshold {
                    vec![0, 1]
                } else {
                    vec![1]
                }
            })
            .collect();
        let config = MinerConfig {
            min_support: pct as f64 / 100.0,
            max_len: 2,
            parallel: false,
        };
        (
            TransactionDb::from_transactions(txns),
            config,
            at_threshold as u64,
        )
    })
}

/// Deterministic Fisher–Yates shuffle of `items` driven by `draws`
/// (consumed cyclically). Used to probe order-independence properties
/// without needing a length-dependent strategy.
pub fn shuffled<T: Clone>(items: &[T], draws: &[u64]) -> Vec<T> {
    let mut out: Vec<T> = items.to_vec();
    if draws.is_empty() {
        return out;
    }
    for i in (1..out.len()).rev() {
        let j = (draws[i % draws.len()] % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// Strings that survive CSV type inference unchanged: non-empty, no
/// digits, none of the null/bool literals, but exercising the quoting
/// path (commas, quotes, embedded newlines).
pub fn arb_safe_string() -> impl Strategy<Value = String> {
    string_regex("[xyz ,\"\n#|;-]{1,12}")
        .expect("valid regex")
        .prop_filter("no blank-only cells (trim-ambiguous)", |s| {
            !s.trim().is_empty()
        })
}

/// A frame with int, float, and string columns (nullable cells) whose
/// values survive CSV write → read unchanged up to numeric re-typing.
pub fn arb_frame() -> impl Strategy<Value = Frame> {
    (1..30usize).prop_flat_map(|n| {
        (
            vec(option::of(any::<i64>()), n),
            vec(option::of(-1.0e12f64..1.0e12), n),
            vec(option::of(arb_safe_string()), n),
        )
            .prop_map(|(ints, floats, strs)| {
                let mut frame = Frame::new();
                frame
                    .add_column("ints", Column::from_opt_ints(ints))
                    .unwrap();
                frame
                    .add_column("floats", Column::from_opt_floats(floats))
                    .unwrap();
                frame
                    .add_column(
                        "strs",
                        Column::from_opt_strs(strs.iter().map(|o| o.as_deref())),
                    )
                    .unwrap();
                frame
            })
    })
}

/// A sacct-shaped frame: job ids, a duration column (whole seconds — the
/// sacct text format has one-second resolution), a memory column in GiB,
/// and a state column over an alphabet that can't be mistaken for a
/// number, bool, or null by the reader's type inference.
pub fn arb_sacct_frame() -> impl Strategy<Value = Frame> {
    (1..25usize).prop_flat_map(|n| {
        (
            vec(0i64..1_000_000, n),
            vec(option::of((0u64..10_000_000).prop_map(|s| s as f64)), n),
            vec(option::of(0.000_001f64..4096.0), n),
            vec(string_regex("[QWXZ]{1,10}").expect("valid regex"), n),
        )
            .prop_map(|(ids, elapsed, mem, states)| {
                let mut frame = Frame::new();
                frame
                    .add_column("JobID", Column::from_opt_ints(ids.into_iter().map(Some)))
                    .unwrap();
                frame
                    .add_column("Elapsed", Column::from_opt_floats(elapsed))
                    .unwrap();
                frame
                    .add_column("ReqMem", Column::from_opt_floats(mem))
                    .unwrap();
                frame
                    .add_column(
                        "State",
                        Column::from_opt_strs(states.iter().map(|s| Some(s.as_str()))),
                    )
                    .unwrap();
                frame
            })
    })
}
