//! Deterministic locks on previously found bugs, phrased through the
//! public cross-crate surfaces (the per-crate unit suites hold the
//! narrower versions). Each test here failed on the pre-fix code.

use irma_data::{parse_records, parse_size_gb, read_sacct_str};
use irma_mine::{fpgrowth, Itemset, MinerConfig, SlidingWindowMiner};
use irma_prep::{BinEdges, BinningScheme};

/// `0.07 × 100 == 7.000000000000001`: the pre-fix ceil returned 8 and the
/// seven jobs sitting exactly at the 7% threshold vanished from the
/// frequent family — and from `hot_items`, which shares `min_count`.
#[test]
fn threshold_sitting_items_survive_the_float_ceil() {
    let config = MinerConfig {
        min_support: 0.07,
        max_len: 2,
        parallel: false,
    };
    let txns: Vec<Vec<u32>> = (0..100)
        .map(|i| if i < 7 { vec![0, 1] } else { vec![1] })
        .collect();

    let db = irma_mine::TransactionDb::from_transactions(txns.clone());
    let frequent = fpgrowth(&db, &config);
    assert_eq!(frequent.count(&Itemset::singleton(0)), Some(7));

    let mut miner = SlidingWindowMiner::new(100, config);
    for txn in txns {
        miner.push(txn);
    }
    assert!(miner.hot_items().contains(&0), "hot_items dropped item 0");
    assert_eq!(miner.mine().count(&Itemset::singleton(0)), Some(7));
}

/// Slurm sizes are 1024-based; the pre-fix parser used decimal factors
/// (512M came back as 0.512 GB) and accepted `-5G`.
#[test]
fn sacct_sizes_are_binary_and_non_negative() {
    assert_eq!(parse_size_gb("512M"), Some(0.5));
    assert_eq!(parse_size_gb("1048576K"), Some(1.0));
    assert_eq!(parse_size_gb("1.5T"), Some(1536.0));
    assert_eq!(parse_size_gb("-5G"), None);

    let frame = read_sacct_str("JobID|ReqMem\n1|512M\n").unwrap();
    assert_eq!(frame.get(0, "ReqMem").unwrap().as_float(), Some(0.5));
}

/// A quoted CRLF kept its stray `\r` pre-fix; and a final record whose
/// only field was a quoted empty string was silently dropped.
#[test]
fn csv_quoted_crlf_and_final_record_edges() {
    let records = parse_records("a\r\n\"x\r\ny\"\r\n").unwrap();
    assert_eq!(records[1], vec!["x\ny"]);

    let records = parse_records("a\n\"\"").unwrap();
    assert_eq!(records.len(), 2, "final quoted-empty record dropped");
}

/// A NaN sentinel in a trace column corrupted every bin edge in release
/// builds pre-hardening (only a debug_assert guarded the sort).
#[test]
fn nan_sentinels_do_not_corrupt_bin_edges() {
    let clean: Vec<f64> = (0..100).map(f64::from).collect();
    let mut dirty = clean.clone();
    dirty.insert(50, f64::NAN);
    let expect = BinEdges::fit(&clean, 4, BinningScheme::EqualFrequency).unwrap();
    let got = BinEdges::fit(&dirty, 4, BinningScheme::EqualFrequency).unwrap();
    assert_eq!(got, expect);
}
