//! Differential properties: FP-Growth ≡ Apriori ≡ Eclat ≡ sliding-window
//! miner ≡ brute-force oracle, on itemsets *and* counts.

use proptest::prelude::*;

use irma_check::generators::{arb_exact_threshold_case, arb_miner_config, arb_transaction_db};
use irma_check::oracle;
use irma_mine::{fpgrowth, Algorithm, Itemset, MinerConfig, SlidingWindowMiner};

proptest! {
    #![proptest_config(irma_check::config())]

    #[test]
    fn fpgrowth_matches_oracle(db in arb_transaction_db(8, 40), config in arb_miner_config()) {
        let fast = fpgrowth(&db, &config);
        let reference = oracle::frequent_itemsets(&db, &config);
        prop_assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn all_algorithms_agree(db in arb_transaction_db(10, 60), config in arb_miner_config()) {
        let reference = Algorithm::FpGrowth.mine(&db, &config);
        for algorithm in Algorithm::all() {
            let result = algorithm.mine(&db, &config);
            prop_assert_eq!(
                result.as_slice(),
                reference.as_slice(),
                "{} disagrees with FP-Growth",
                algorithm.name()
            );
        }
    }

    #[test]
    fn stream_mine_matches_batch_and_oracle(
        txns in proptest::collection::vec(
            proptest::collection::vec(0u32..8, 0..10),
            1..60,
        ),
        capacity in 1usize..40,
        config in arb_miner_config(),
    ) {
        let mut miner = SlidingWindowMiner::new(capacity, config.clone());
        for txn in txns {
            miner.push(txn);
        }
        let streamed = miner.mine();
        let window = miner.snapshot();
        let batch = fpgrowth(&window, &config);
        prop_assert_eq!(streamed.as_slice(), batch.as_slice());
        let reference = oracle::frequent_itemsets(&window, &config);
        prop_assert_eq!(streamed.as_slice(), reference.as_slice());
    }

    #[test]
    fn parallel_equals_sequential(
        db in arb_transaction_db(10, 60),
        mut config in arb_miner_config(),
    ) {
        config.parallel = false;
        let sequential = fpgrowth(&db, &config);
        config.parallel = true;
        let parallel = fpgrowth(&db, &config);
        prop_assert_eq!(sequential.as_slice(), parallel.as_slice());
    }

    #[test]
    fn exact_threshold_item_is_frequent(
        (db, config, expected_count) in arb_exact_threshold_case(),
    ) {
        // Item 0 occurs in exactly ceil(min_support × n) transactions:
        // "support ≥ threshold" must include it. The pre-fix float
        // min_count excluded it on 290 (pct, n) grid points.
        for algorithm in Algorithm::all() {
            let frequent = algorithm.mine(&db, &config);
            prop_assert_eq!(
                frequent.count(&Itemset::singleton(0)),
                Some(expected_count),
                "{} dropped the threshold-sitting item (min_support {}, n {})",
                algorithm.name(),
                config.min_support,
                db.len()
            );
        }
    }

    #[test]
    fn stream_hot_items_match_threshold_semantics(
        (db, config, expected_count) in arb_exact_threshold_case(),
    ) {
        // hot_items goes through the same min_count and must keep the
        // threshold-sitting item; its count matches the oracle's.
        let mut miner = SlidingWindowMiner::new(db.len(), config);
        for txn in db.iter() {
            miner.push(txn.iter().copied());
        }
        prop_assert!(miner.hot_items().contains(&0));
        prop_assert_eq!(miner.item_count(0), expected_count);
    }
}

/// Oracle self-check outside the proptest loop: counts reported by the
/// miners equal a from-scratch scan even when `with_universe` padded the
/// item space.
#[test]
fn counts_survive_universe_padding() {
    let db =
        irma_mine::TransactionDb::from_transactions(vec![vec![0u32, 1], vec![0]]).with_universe(6);
    let config = MinerConfig::with_min_support(0.5);
    let frequent = fpgrowth(&db, &config);
    let reference = oracle::frequent_itemsets(&db, &config);
    assert_eq!(frequent.as_slice(), reference.as_slice());
}
