//! Round-trip properties for the CSV and sacct text formats.

use proptest::prelude::*;

use irma_check::generators::{arb_frame, arb_sacct_frame};
use irma_data::{
    format_sacct_duration, format_size_gb, parse_records, parse_sacct_duration, parse_size_gb,
    read_csv_str, read_sacct_str, write_csv_string, write_sacct_string, DataError, Frame, Value,
};

/// Cell-wise frame comparison tolerant of the re-typing a text round trip
/// legitimately performs (all-null columns become Str, integral floats
/// re-infer as Int) — numeric content must survive exactly.
fn assert_frames_equivalent(original: &Frame, reread: &Frame) -> Result<(), TestCaseError> {
    prop_assert_eq!(reread.n_rows(), original.n_rows());
    prop_assert_eq!(reread.names(), original.names());
    for row in 0..original.n_rows() {
        for name in original.names() {
            let a = original.get(row, name).unwrap();
            let b = reread.get(row, name).unwrap();
            match (&a, &b) {
                (x, y) if x.is_null() && y.is_null() => {}
                (x, y) => match (x.as_float(), y.as_float()) {
                    (Some(p), Some(q)) => prop_assert_eq!(p, q, "{}[{}]", name, row),
                    _ => prop_assert_eq!(x, y, "{}[{}]", name, row),
                },
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(irma_check::config())]

    #[test]
    fn csv_write_read_round_trips(frame in arb_frame()) {
        let text = write_csv_string(&frame);
        let reread = read_csv_str(&text).expect("own output must parse");
        assert_frames_equivalent(&frame, &reread)?;
    }

    #[test]
    fn csv_parser_never_panics(text in "[ -~\n\r\"]{0,300}") {
        let _ = read_csv_str(&text);
    }

    #[test]
    fn csv_crlf_and_lf_inputs_parse_identically(text in "[xyz,\"\n]{0,80}") {
        // Rewriting every LF as CRLF — including inside quoted fields —
        // must not change the parse: CRLF is the file's line-ending
        // dialect, not data. (Pre-fix, a quoted CRLF kept a stray '\r'.)
        let crlf = text.replace('\n', "\r\n");
        match (parse_records(&text), parse_records(&crlf)) {
            (Ok(lf_records), Ok(crlf_records)) => {
                prop_assert_eq!(lf_records, crlf_records);
            }
            (Err(_), Err(_)) => {}
            (lf, crlf) => {
                return Err(TestCaseError::fail(format!(
                    "dialects disagree on validity: LF {lf:?} vs CRLF {crlf:?}"
                )));
            }
        }
    }

    #[test]
    fn csv_error_line_counts_embedded_newlines(
        records in prop::collection::vec(
            prop::collection::vec("[ab\n,\"]{0,6}", 1..4),
            0..8,
        )
    ) {
        // Well-formed records whose quoted fields may span lines, followed
        // by a malformed line (a quote inside an unquoted field). The
        // reported 1-based line must count every physical line the prior
        // records consumed — one per record terminator plus one per
        // newline embedded in a quoted field — not the record index.
        let mut text = String::new();
        let mut expected_line = 1usize;
        for record in &records {
            let quoted: Vec<String> = record
                .iter()
                .map(|f| format!("\"{}\"", f.replace('"', "\"\"")))
                .collect();
            text.push_str(&quoted.join(","));
            text.push('\n');
            expected_line +=
                1 + record.iter().map(|f| f.matches('\n').count()).sum::<usize>();
        }
        text.push_str("x\"oops");
        match parse_records(&text) {
            Err(DataError::Csv { line, message }) => {
                prop_assert_eq!(line, expected_line);
                prop_assert!(message.contains("quote"));
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected a Csv error, got {other:?}"
                )));
            }
        }
    }

    #[test]
    fn csv_final_newline_is_optional(frame in arb_frame()) {
        let text = write_csv_string(&frame);
        let trimmed = text.strip_suffix('\n').expect("writer ends with newline");
        let with = parse_records(&text).expect("writer output parses");
        let without = parse_records(trimmed).expect("trailing newline optional");
        prop_assert_eq!(with, without);
    }

    #[test]
    fn sacct_write_read_round_trips(frame in arb_sacct_frame()) {
        let text = write_sacct_string(&frame);
        let reread = read_sacct_str(&text).expect("own output must parse");
        assert_frames_equivalent(&frame, &reread)?;
        // And the round trip is a fixpoint: writing the reread frame
        // reproduces the text byte for byte.
        prop_assert_eq!(write_sacct_string(&reread), text);
    }

    #[test]
    fn size_gb_round_trips_exactly(gb in 0.000_001f64..1.0e9) {
        // `G` is the identity unit and Rust float formatting is
        // shortest-round-trip, so the cycle must be exact, not approximate.
        let text = format_size_gb(gb).expect("finite non-negative");
        prop_assert_eq!(parse_size_gb(&text), Some(gb), "{}", text);
    }

    #[test]
    fn negative_sizes_are_rejected(gb in 0.000_001f64..1.0e9, unit in "[BKMGT]") {
        // A size can't be negative: the formatter refuses to produce one
        // and the parser refuses to accept one in any unit.
        prop_assert_eq!(format_size_gb(-gb), None);
        let text = format!("-{gb}{unit}");
        prop_assert_eq!(parse_size_gb(&text), None, "{}", text);
    }

    #[test]
    fn size_suffixes_use_binary_factors(kib in 1u64..4_194_304) {
        // Slurm sizes are 1024-based: the same byte quantity written in
        // K, M, or bare bytes must parse to the same GiB value.
        let from_k = parse_size_gb(&format!("{kib}K")).expect("valid size");
        prop_assert_eq!(from_k, kib as f64 / (1u64 << 20) as f64);
        if kib % 1024 == 0 {
            let from_m = parse_size_gb(&format!("{}M", kib / 1024)).expect("valid size");
            prop_assert_eq!(from_k, from_m);
        }
        let from_b = parse_size_gb(&format!("{}", kib * 1024)).expect("valid size");
        prop_assert_eq!(from_k, from_b);
    }

    #[test]
    fn duration_round_trips_on_whole_seconds(secs in 0u64..100_000_000) {
        let text = format_sacct_duration(secs as f64);
        prop_assert_eq!(parse_sacct_duration(&text), Some(secs as f64), "{}", text);
    }

    #[test]
    fn sacct_null_cells_stay_null(row_count in 1usize..20) {
        // Empty fields must read back as nulls, not zeros, through a
        // write/read cycle.
        let mut frame = Frame::new();
        frame
            .add_column(
                "JobID",
                irma_data::Column::from_opt_ints((0..row_count).map(|i| Some(i as i64))),
            )
            .unwrap();
        frame
            .add_column(
                "ReqMem",
                irma_data::Column::from_opt_floats((0..row_count).map(|_| None)),
            )
            .unwrap();
        let reread = read_sacct_str(&write_sacct_string(&frame)).expect("parses");
        for row in 0..row_count {
            prop_assert_eq!(reread.get(row, "ReqMem").unwrap(), Value::Null);
        }
    }
}
