//! Chaos suite for the `irma-serve` HTTP layer.
//!
//! The contract under test: whatever a client does at the socket level —
//! slow-loris dribbles, mid-body disconnects, abandoned reads, binary
//! garbage, oversized bodies and heads — the server answers with a
//! documented status or drops the connection cleanly. It never panics,
//! never wedges a worker slot, and after the storm its active-connection
//! count returns to zero and healthy tenants are still served.
//!
//! The combined run layers three failure sources at once (socket chaos,
//! a budget-tripping tenant, an injected worker panic) and checks the
//! healthy tenant's requests keep succeeding throughout.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;
use std::time::Duration;

use irma_check::fault::{run_socket_fault, SocketFault, SocketOutcome};
use irma_obs::Metrics;
use irma_serve::{AdmissionConfig, ServeConfig, Server};

/// Statuses the HTTP↔error table in DESIGN.md §11 documents. Anything
/// else coming back from the server is a contract violation.
const DOCUMENTED: &[u16] = &[200, 400, 404, 405, 411, 413, 422, 429, 431, 500, 503, 504];

/// Suppresses backtrace spray from panics whose payload says they were
/// injected on purpose; real assertion failures still print.
fn quiet_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("injected"));
            if !injected {
                previous(info);
            }
        }));
    });
}

fn chaos_server() -> Server {
    let config = ServeConfig {
        workers: 3,
        queue_depth: 16,
        max_body_bytes: 1024,
        read_timeout: Duration::from_secs(2),
        allow_fault_injection: true,
        admission: AdmissionConfig {
            // Generous bucket so the chaos volume itself is not shed;
            // the breaker tests configure their own tenants.
            rate_per_sec: 500.0,
            burst: 200.0,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    Server::start("127.0.0.1:0", config, Metrics::enabled()).expect("bind chaos server")
}

const CSV: &str = "gpu_util,state\n0,Failed\n0,Failed\n0,Failed\n95,Succeeded\n90,Succeeded\n92,Succeeded\n0,Failed\n91,Succeeded\n";

fn request(addr: std::net::SocketAddr, raw: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    stream.write_all(raw.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    Some(response)
}

fn analyze(addr: std::net::SocketAddr, query: &str, headers: &str, body: &str) -> Option<String> {
    request(
        addr,
        &format!(
            "POST /v1/analyze{query} HTTP/1.1\r\nhost: chaos\r\ncontent-length: {}\r\n{headers}\r\n{body}",
            body.len()
        ),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Polls until the server's active-connection gauge returns to zero
/// (rejector threads and drops settle asynchronously).
fn assert_drains_to_zero(server: &Server) {
    for _ in 0..100 {
        if server.active_connections() == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!(
        "active connections stuck at {} after chaos",
        server.active_connections()
    );
}

#[test]
fn every_socket_fault_yields_documented_status_or_clean_drop() {
    quiet_panics();
    let server = chaos_server();
    let addr = server.local_addr();
    for seed in 0..48 {
        let fault = SocketFault::from_seed(seed);
        let outcome = run_socket_fault(addr, &fault);
        match outcome {
            SocketOutcome::Status(status) => assert!(
                DOCUMENTED.contains(&status),
                "seed {seed}: fault {fault:?} got undocumented status {status}"
            ),
            SocketOutcome::Dropped => {}
            SocketOutcome::ConnectFailed => {
                panic!("seed {seed}: fault {fault:?} could not even connect")
            }
        }
    }
    assert_drains_to_zero(&server);
    // The server is still healthy after the storm.
    let health = request(addr, "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n").expect("healthz");
    assert_eq!(status_of(&health), 200, "got: {health}");
    server.shutdown();
}

#[test]
fn oversized_faults_get_their_specific_statuses() {
    quiet_panics();
    let server = chaos_server();
    let addr = server.local_addr();
    // Body past the 1 KiB cap → 413 from the declared length.
    let body = run_socket_fault(addr, &SocketFault::OversizedBody { bytes: 4096 });
    assert_eq!(body, SocketOutcome::Status(413));
    // Head past the 8 KiB cap → 431, not a reset.
    let head = run_socket_fault(addr, &SocketFault::OversizedHead { padding: 10 * 1024 });
    assert_eq!(head, SocketOutcome::Status(431));
    // Binary junk where the request line belongs → 4xx or clean drop,
    // never a hang or a 5xx (the server did nothing wrong).
    let junk = run_socket_fault(addr, &SocketFault::GarbageRequestLine { len: 256 });
    match junk {
        SocketOutcome::Status(status) => {
            assert!((400..500).contains(&status), "garbage got {status}")
        }
        SocketOutcome::Dropped => {}
        SocketOutcome::ConnectFailed => panic!("garbage fault could not connect"),
    }
    assert_drains_to_zero(&server);
    server.shutdown();
}

#[test]
fn slow_loris_cannot_wedge_the_worker_pool() {
    quiet_panics();
    let server = chaos_server();
    let addr = server.local_addr();
    // More concurrent slow clients than workers: each dribbles a partial
    // head and hangs up. The 2 s read timeout bounds every slot.
    let lorises: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                run_socket_fault(
                    addr,
                    &SocketFault::SlowLoris {
                        chunk: 2,
                        pause_ms: 30,
                        rounds: 4,
                    },
                );
                i
            })
        })
        .collect();
    for handle in lorises {
        handle.join().expect("loris thread");
    }
    assert_drains_to_zero(&server);
    // Real work still flows afterwards.
    let ok = analyze(addr, "?min_support=0.2", "", CSV).expect("analyze after loris");
    assert_eq!(status_of(&ok), 200, "got: {ok}");
    server.shutdown();
}

#[test]
fn combined_chaos_budget_trips_and_panics_spare_healthy_tenants() {
    quiet_panics();
    let server = chaos_server();
    let addr = server.local_addr();
    let healthy_ok = AtomicUsize::new(0);
    let healthy_total = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Socket chaos: a stream of misbehaving clients.
        scope.spawn(|| {
            for seed in 100..130 {
                let fault = SocketFault::from_seed(seed);
                let outcome = run_socket_fault(addr, &fault);
                if let SocketOutcome::Status(status) = outcome {
                    assert!(
                        DOCUMENTED.contains(&status),
                        "combined run: {fault:?} got undocumented {status}"
                    );
                }
            }
        });
        // A tenant that keeps tripping its budget (zero deadline → 504s,
        // then the circuit breaker sheds it with 429s).
        scope.spawn(|| {
            for _ in 0..8 {
                if let Some(response) = analyze(
                    addr,
                    "",
                    "x-irma-tenant: doomed\r\nx-irma-timeout-ms: 0\r\n",
                    CSV,
                ) {
                    let status = status_of(&response);
                    assert!(
                        status == 504 || status == 429,
                        "doomed tenant expected 504/429, got {status}: {response}"
                    );
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        // A tenant whose requests inject worker panics mid-mining. Its
        // min_support is unique to this tenant: the cache key excludes
        // the budget (and so the panic_after knob), so sharing a config
        // with the healthy tenant would serve the saboteur a cached 200
        // before the injection could fire.
        scope.spawn(|| {
            for _ in 0..4 {
                if let Some(response) = analyze(
                    addr,
                    "?panic_after=1&min_support=0.21",
                    "x-irma-tenant: saboteur\r\n",
                    CSV,
                ) {
                    let status = status_of(&response);
                    // 500 (contained panic) until the breaker opens, 429 after.
                    assert!(
                        status == 500 || status == 429,
                        "saboteur expected 500/429, got {status}: {response}"
                    );
                }
                std::thread::sleep(Duration::from_millis(30));
            }
        });
        // The healthy tenant, running throughout the storm.
        scope.spawn(|| {
            for i in 0..12 {
                healthy_total.fetch_add(1, Ordering::Relaxed);
                // Vary min_support across a few values so both cold and
                // cache-hit paths run under chaos.
                let query = match i % 3 {
                    0 => "?min_support=0.2",
                    1 => "?min_support=0.25",
                    _ => "?min_support=0.3",
                };
                if let Some(response) = analyze(addr, query, "x-irma-tenant: steady\r\n", CSV) {
                    if status_of(&response) == 200 {
                        assert!(
                            response.contains("\"degraded\":false"),
                            "healthy tenant saw a degraded result: {response}"
                        );
                        healthy_ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        });
    });

    let ok = healthy_ok.load(Ordering::Relaxed);
    let total = healthy_total.load(Ordering::Relaxed);
    assert!(
        ok == total && total > 0,
        "healthy tenant: only {ok}/{total} requests succeeded under chaos"
    );
    assert_drains_to_zero(&server);
    // Post-storm: the server still mines, and the metrics endpoint
    // still scrapes.
    let after = analyze(addr, "?min_support=0.2", "x-irma-tenant: steady\r\n", CSV)
        .expect("post-chaos analyze");
    assert_eq!(status_of(&after), 200);
    let metrics = request(addr, "GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n").expect("metrics");
    assert!(metrics.contains("# EOF"));
    server.shutdown();
}

#[test]
fn degraded_analyses_are_200_with_a_degradation_record() {
    quiet_panics();
    // A tiny itemset budget forces the degradation ladder on every cold
    // analysis; the contract is 200 + degraded:true + the full record,
    // mirroring CLI exit code 4.
    let config = ServeConfig {
        default_budget: irma_core::ExecBudget {
            max_itemsets: Some(2),
            ..irma_core::ExecBudget::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config, Metrics::enabled()).expect("bind");
    let addr = server.local_addr();
    let response = analyze(addr, "?min_support=0.2", "", CSV).expect("degraded analyze");
    let status = status_of(&response);
    if status == 200 {
        assert!(
            response.contains("\"degraded\":true"),
            "budget-capped 200 must say degraded: {response}"
        );
        assert!(
            response.contains("\"degradation\":{") && response.contains("\"steps\":["),
            "degraded response must carry the Degradation record: {response}"
        );
        // Degraded results are never cached: replaying must re-mine.
        assert!(response.contains("\"cached\":false"));
        assert_eq!(server.cache_entries(), 0);
    } else {
        // The ladder can also exhaust outright on a cap this tight.
        assert_eq!(
            status, 503,
            "expected degraded 200 or exhausted 503: {response}"
        );
    }
    server.shutdown();
}
