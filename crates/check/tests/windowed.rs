//! Windowed differential suite: the incrementally-maintained prefix
//! tree inside `SlidingWindowMiner` against batch FP-Growth on the
//! materialized window, under fuzzed arrival/eviction/mine schedules.
//!
//! Three contracts:
//!
//! * mining the incremental tree is **byte-identical** to batch
//!   FP-Growth over the same window, at mining-pool widths 1, 2, and 8,
//!   with re-mines interleaved anywhere in the schedule;
//! * the tree's weighted paths always re-expand to exactly the window
//!   multiset, and eviction counting stays exact under fuzzed
//!   capacities (`evictions = pushes - capacity` once the window fills);
//! * the incrementally-cached drift equals a from-scratch recomputation
//!   after any push/evict/mine interleaving.

use std::collections::VecDeque;

use proptest::prelude::*;

use irma_check::generators::arb_miner_config;
use irma_mine::{fpgrowth, IncrementalFpTree, ItemId, SlidingWindowMiner};
use irma_obs::Metrics;

/// A fuzzed arrival schedule: transactions over a small item universe,
/// with `mine_every` marking where re-mines interleave.
fn arb_schedule() -> impl Strategy<Value = (Vec<Vec<ItemId>>, usize)> {
    (
        proptest::collection::vec(proptest::collection::vec(0u32..8, 0..6), 1..80),
        1usize..20,
    )
}

/// Canonicalizes a transaction the way `SlidingWindowMiner::push` does.
fn canonical(txn: &[ItemId]) -> Vec<ItemId> {
    let mut t = txn.to_vec();
    t.sort_unstable();
    t.dedup();
    t
}

/// Reference drift: L1 distance between the window's current item
/// frequencies and the baseline's, over the union of items.
fn reference_drift(
    window: &VecDeque<Vec<ItemId>>,
    baseline: &Option<(usize, Vec<u64>)>,
    n_items: usize,
) -> f64 {
    let Some((base_n, base)) = baseline else {
        return f64::INFINITY;
    };
    let mut counts = vec![0u64; n_items];
    for txn in window {
        for &item in txn {
            counts[item as usize] += 1;
        }
    }
    let n = window.len().max(1) as f64;
    let bn = (*base_n).max(1) as f64;
    (0..n_items)
        .map(|i| {
            let now = counts[i] as f64 / n;
            let then = base.get(i).copied().unwrap_or(0) as f64 / bn;
            (now - then).abs()
        })
        .sum()
}

proptest! {
    #![proptest_config(irma_check::config())]

    #[test]
    fn incremental_window_mines_identically_to_batch_at_widths_1_2_8(
        (txns, mine_every) in arb_schedule(),
        capacity in 1usize..40,
        config in arb_miner_config(),
    ) {
        for width in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("pool");
            pool.install(|| {
                let mut miner = SlidingWindowMiner::new(capacity, config.clone());
                for (i, txn) in txns.iter().enumerate() {
                    miner.push(txn.iter().copied());
                    // Interleave re-mines mid-schedule: every mine commits
                    // a drift baseline and must leave the incremental tree
                    // consistent for the pushes and evictions that follow.
                    if i % mine_every == 0 {
                        let streamed = miner.mine();
                        let batch = fpgrowth(&miner.snapshot(), &config);
                        prop_assert_eq!(
                            streamed.as_slice(),
                            batch.as_slice(),
                            "width {} diverged at arrival {}",
                            width,
                            i
                        );
                    }
                }
                let streamed = miner.mine();
                let batch = fpgrowth(&miner.snapshot(), &config);
                prop_assert_eq!(
                    streamed.as_slice(),
                    batch.as_slice(),
                    "width {} diverged on the final window",
                    width
                );
                Ok(())
            })?;
        }
    }

    #[test]
    fn tree_multiset_and_eviction_counts_stay_exact(
        txns in proptest::collection::vec(
            proptest::collection::vec(0u32..8, 0..6),
            1..80,
        ),
        capacity in 1usize..20,
    ) {
        // Reference window + standalone incremental tree, maintained by
        // the same push/evict schedule the miner runs internally.
        let mut reference: VecDeque<Vec<ItemId>> = VecDeque::new();
        let mut tree = IncrementalFpTree::new();
        let metrics = Metrics::enabled();
        let mut miner =
            SlidingWindowMiner::new(capacity, irma_mine::MinerConfig::with_min_support(0.5))
                .with_metrics(metrics.clone());
        for txn in &txns {
            let canon = canonical(txn);
            if reference.len() == capacity {
                let evicted = reference.pop_front().unwrap();
                tree.remove(&evicted);
            }
            tree.insert(&canon);
            reference.push_back(canon);
            miner.push(txn.iter().copied());
        }
        // The tree re-expands to exactly the window multiset.
        let mut expanded = tree.to_transactions();
        expanded.sort();
        let mut expected: Vec<Vec<ItemId>> = reference.iter().cloned().collect();
        expected.sort();
        prop_assert_eq!(expanded, expected);
        // Every transaction beyond capacity evicted exactly one.
        let expected_evictions = txns.len().saturating_sub(capacity) as u64;
        let evictions = metrics
            .snapshot()
            .counters
            .iter()
            .find(|(name, _)| name == "stream.evictions")
            .map(|&(_, v)| v)
            .unwrap_or(0);
        prop_assert_eq!(evictions, expected_evictions);
        prop_assert_eq!(miner.len(), reference.len());
    }

    #[test]
    fn incremental_drift_equals_recomputed_drift(
        // Each op is a push, optionally followed by one or two re-mines
        // (op tag 1/2), so baselines are committed at fuzzed points —
        // including back-to-back mines on an unchanged window.
        ops in proptest::collection::vec(
            (proptest::collection::vec(0u32..8, 0..6), 0u8..4),
            1..80,
        ),
        capacity in 1usize..20,
    ) {
        let config = irma_mine::MinerConfig::with_min_support(0.3);
        let mut miner = SlidingWindowMiner::new(capacity, config.clone());
        let mut reference: VecDeque<Vec<ItemId>> = VecDeque::new();
        let mut baseline: Option<(usize, Vec<u64>)> = None;
        let check = |miner: &SlidingWindowMiner,
                         reference: &VecDeque<Vec<ItemId>>,
                         baseline: &Option<(usize, Vec<u64>)>|
         -> Result<(), TestCaseError> {
            let expected = reference_drift(reference, baseline, 8);
            let actual = miner.drift();
            if expected.is_infinite() {
                prop_assert!(actual.is_infinite());
            } else {
                prop_assert!(
                    (actual - expected).abs() < 1e-9,
                    "cached drift {} != recomputed {}",
                    actual,
                    expected
                );
            }
            Ok(())
        };
        for (txn, tag) in &ops {
            miner.push(txn.iter().copied());
            if reference.len() == capacity {
                reference.pop_front();
            }
            reference.push_back(canonical(txn));
            check(&miner, &reference, &baseline)?;
            for _ in 0..(*tag).min(2) {
                miner.mine();
                let mut counts = vec![0u64; 8];
                for txn in &reference {
                    for &item in txn {
                        counts[item as usize] += 1;
                    }
                }
                baseline = Some((reference.len(), counts));
                check(&miner, &reference, &baseline)?;
            }
        }
    }
}
