//! Rule-metric invariants: every generated rule's stored metrics must be
//! re-derivable from raw database counts, sides must be disjoint and
//! non-empty, and downward closure must hold across the backing family.

use proptest::prelude::*;

use irma_check::generators::arb_transaction_db;
use irma_mine::{fpgrowth, MinerConfig, TransactionDb};
use irma_rules::{generate_rules, RuleConfig};

fn arb_rule_config() -> impl Strategy<Value = RuleConfig> {
    (0.0f64..3.0, 0.0f64..1.0, 0.0f64..0.2).prop_map(|(min_lift, min_confidence, min_support)| {
        RuleConfig {
            min_lift,
            min_confidence,
            min_support,
        }
    })
}

/// Low-threshold miner config so the rule lattice is well populated.
fn mine_config() -> MinerConfig {
    MinerConfig {
        min_support: 0.05,
        max_len: 4,
        parallel: false,
    }
}

fn recompute_metrics(db: &TransactionDb, rule: &irma_rules::Rule) -> (u64, f64, f64, f64) {
    let n = db.len().max(1) as f64;
    let xy = db.support_count(&rule.itemset());
    let x = db.support_count(&rule.antecedent);
    let y = db.support_count(&rule.consequent);
    let support = xy as f64 / n;
    let confidence = if x == 0 { 0.0 } else { xy as f64 / x as f64 };
    let supp_y = y as f64 / n;
    let lift = if supp_y == 0.0 {
        0.0
    } else {
        confidence / supp_y
    };
    (xy, support, confidence, lift)
}

proptest! {
    #![proptest_config(irma_check::config())]

    #[test]
    fn metrics_rederive_from_counts(
        db in arb_transaction_db(8, 50),
        config in arb_rule_config(),
    ) {
        let frequent = fpgrowth(&db, &mine_config());
        let rules = generate_rules(&frequent, &config);
        for rule in &rules {
            let (xy, support, confidence, lift) = recompute_metrics(&db, rule);
            prop_assert_eq!(rule.support_count, xy, "{}", rule);
            prop_assert_eq!(rule.support, support, "{}", rule);
            prop_assert_eq!(rule.confidence, confidence, "{}", rule);
            prop_assert_eq!(rule.lift, lift, "{}", rule);
        }
    }

    #[test]
    fn sides_disjoint_nonempty_and_thresholds_respected(
        db in arb_transaction_db(8, 50),
        config in arb_rule_config(),
    ) {
        let frequent = fpgrowth(&db, &mine_config());
        for rule in generate_rules(&frequent, &config) {
            prop_assert!(!rule.antecedent.is_empty());
            prop_assert!(!rule.consequent.is_empty());
            prop_assert!(rule.antecedent.is_disjoint_from(&rule.consequent));
            prop_assert!(rule.lift >= config.min_lift);
            prop_assert!(rule.confidence >= config.min_confidence);
            prop_assert!(rule.support >= config.min_support);
        }
    }

    #[test]
    fn downward_closure_resolves_every_side(
        db in arb_transaction_db(8, 50),
    ) {
        // Every rule's whole itemset and both sides must be present in
        // the frequent family (this is what lets generate_rules resolve
        // counts without database rescans).
        let frequent = fpgrowth(&db, &mine_config());
        for rule in generate_rules(&frequent, &RuleConfig::with_min_lift(0.0)) {
            prop_assert!(frequent.count(&rule.itemset()).is_some());
            prop_assert!(frequent.count(&rule.antecedent).is_some());
            prop_assert!(frequent.count(&rule.consequent).is_some());
        }
        // And the family itself is downward closed.
        for (set, _) in frequent.iter() {
            for sub in set.proper_subsets() {
                prop_assert!(
                    frequent.count(&sub).is_some(),
                    "subset {} of frequent {} missing", sub, set
                );
            }
        }
    }

    #[test]
    fn derived_metrics_are_consistent(
        db in arb_transaction_db(8, 50),
    ) {
        let n = db.len().max(1) as f64;
        let frequent = fpgrowth(&db, &mine_config());
        for rule in generate_rules(&frequent, &RuleConfig::with_min_lift(0.0)) {
            let x = db.support_count(&rule.antecedent) as f64 / n;
            let y = db.support_count(&rule.consequent) as f64 / n;
            // antecedent/consequent supports are recovered from the stored
            // ratios, so allow for float round-trip error.
            prop_assert!((rule.antecedent_support() - x).abs() < 1e-9, "{}", rule);
            if rule.lift > 0.0 {
                prop_assert!((rule.consequent_support() - y).abs() < 1e-9, "{}", rule);
            }
            let leverage = rule.leverage();
            prop_assert!((-0.25..=0.25).contains(&leverage), "{}: leverage {}", rule, leverage);
            prop_assert!((leverage - (rule.support - x * y)).abs() < 1e-9, "{}", rule);
            prop_assert!(rule.conviction() >= 0.0, "{}", rule);
        }
    }
}
