//! Scheduler determinism suite: the work-stealing pool must be invisible
//! in every observable output.
//!
//! Work stealing makes *execution order* nondeterministic by design;
//! these properties pin down what has to stay deterministic anyway:
//!
//! * every miner's `FrequentItemsets` is byte-identical at pool widths
//!   1, 2, and 8 — and under fuzzed steal orders (seeded victim jitter
//!   via `ThreadPoolBuilder::steal_jitter`), because subtree results are
//!   merged in rank order, never in completion order;
//! * a forced budget trip fails with the same `MineError` variant at
//!   every width (the trip predicate depends only on width-independent
//!   emit counts, not on which worker emitted);
//! * an injected worker panic surfaces as `Err(MineError::WorkerPanic)`
//!   at every width — contained per rank, never unwinding through the
//!   pool or poisoning sibling subtrees;
//! * the lock-free Chase-Lev deque under the pool never loses or
//!   duplicates a task under fuzzed concurrent push/pop/steal
//!   interleavings at widths up to 8 (one owner + up to 7 thieves);
//! * the SIMD-chunked AND+popcount kernel Eclat's dense path uses is
//!   byte-identical to the scalar word loop on fuzzed bitsets, including
//!   tail lengths not divisible by the 4-word chunk.
//!
//! Case count and seeding follow the harness defaults (256 cases,
//! `PROPTEST_CASES` / `PROPTEST_SEED` overridable, corpus replay on).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Once;

use proptest::prelude::*;

use irma_check::fault::FaultRng;
use irma_check::generators::{arb_miner_config, arb_transaction_db};
use irma_mine::{
    Algorithm, BudgetBreach, BudgetGuard, ExecBudget, FrequentItemsets, MineError, MinerConfig,
    TransactionDb,
};
use irma_obs::Metrics;
use rayon::deque::{ChaseLev, Steal};
use rayon::ThreadPoolBuilder;

/// Non-zero while a mining run with an injected fault is in flight:
/// panics raised there are contained on purpose and should not spray
/// backtraces over the test output. Panics outside — real assertion
/// failures — still print. (Same idiom as the chaos suite.)
static CONTAINED: AtomicUsize = AtomicUsize::new(0);

fn quiet_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CONTAINED.load(Ordering::SeqCst) == 0 {
                previous(info);
            }
        }));
    });
}

struct ContainedRegion;

impl ContainedRegion {
    fn enter() -> ContainedRegion {
        CONTAINED.fetch_add(1, Ordering::SeqCst);
        ContainedRegion
    }
}

impl Drop for ContainedRegion {
    fn drop(&mut self) {
        CONTAINED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one miner on a fresh pool of the given width and steal-jitter
/// seed. Building a pool per run also exercises spawn/shutdown churn.
fn mine_on(
    algorithm: Algorithm,
    db: &TransactionDb,
    config: &MinerConfig,
    budget: &ExecBudget,
    width: usize,
    jitter: u64,
) -> Result<FrequentItemsets, MineError> {
    let pool = ThreadPoolBuilder::new()
        .num_threads(width)
        .steal_jitter(jitter)
        .build()
        .expect("pool builds");
    pool.install(|| {
        algorithm.try_mine_with(db, config, &Metrics::disabled(), &BudgetGuard::new(budget))
    })
}

/// Collapses an outcome to its observable kind. `Ok` payloads are
/// compared byte-for-byte separately; error *payloads* (emit counter
/// snapshots, panic text) may legitimately vary with scheduling — the
/// variant may not.
fn outcome_kind(result: &Result<FrequentItemsets, MineError>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(MineError::InvalidConfig(_)) => "invalid_config",
        Err(MineError::Budget(BudgetBreach::Itemsets { .. })) => "budget.itemsets",
        Err(MineError::Budget(BudgetBreach::TreeMemory { .. })) => "budget.tree_memory",
        Err(MineError::Budget(BudgetBreach::Deadline { .. })) => "budget.deadline",
        Err(MineError::Budget(BudgetBreach::Cancelled)) => "budget.cancelled",
        Err(MineError::WorkerPanic { .. }) => "worker_panic",
    }
}

proptest! {
    #![proptest_config(irma_check::config())]

    #[test]
    fn miners_are_width_invariant(
        db in arb_transaction_db(8, 40),
        mut config in arb_miner_config(),
        jitter_seed in any::<u64>(),
    ) {
        config.parallel = true;
        let mut rng = FaultRng::new(jitter_seed);
        let unlimited = ExecBudget::unlimited();
        for algorithm in Algorithm::all() {
            let reference = mine_on(algorithm, &db, &config, &unlimited, 1, 0)
                .expect("unlimited mine succeeds");
            for width in [2usize, 8] {
                let jitter = rng.next_u64();
                let result = mine_on(algorithm, &db, &config, &unlimited, width, jitter)
                    .expect("unlimited mine succeeds");
                prop_assert_eq!(
                    result.as_slice(),
                    reference.as_slice(),
                    "{} diverges at width {} (jitter seed {:#x})",
                    algorithm.name(),
                    width,
                    jitter
                );
            }
        }
    }

    #[test]
    fn steal_order_never_leaks_into_results(
        db in arb_transaction_db(10, 60),
        mut config in arb_miner_config(),
        fuzz_seed in any::<u64>(),
    ) {
        config.parallel = true;
        let unlimited = ExecBudget::unlimited();
        let reference = mine_on(Algorithm::FpGrowth, &db, &config, &unlimited, 1, 0)
            .expect("sequential mine succeeds");
        // Several independent jitter streams on the widest pool: victim
        // choice and steal timing differ per seed, output must not.
        let mut rng = FaultRng::new(fuzz_seed);
        for _ in 0..4 {
            let jitter = rng.next_u64();
            let fuzzed = mine_on(Algorithm::FpGrowth, &db, &config, &unlimited, 8, jitter)
                .expect("parallel mine succeeds");
            prop_assert_eq!(
                fuzzed.as_slice(),
                reference.as_slice(),
                "steal order leaked (jitter seed {:#x})",
                jitter
            );
        }
    }

    #[test]
    fn budget_trips_have_width_invariant_type(
        db in arb_transaction_db(8, 40),
        mut config in arb_miner_config(),
        cap in 1u64..24,
        jitter_seed in any::<u64>(),
    ) {
        config.parallel = true;
        let budget = ExecBudget {
            max_itemsets: Some(cap),
            ..ExecBudget::unlimited()
        };
        let mut rng = FaultRng::new(jitter_seed);
        for algorithm in Algorithm::all() {
            let reference = mine_on(algorithm, &db, &config, &budget, 1, 0);
            for width in [2usize, 8] {
                let result = mine_on(algorithm, &db, &config, &budget, width, rng.next_u64());
                prop_assert_eq!(
                    outcome_kind(&result),
                    outcome_kind(&reference),
                    "{} outcome kind diverges at width {}",
                    algorithm.name(),
                    width
                );
                if let (Ok(expected), Ok(got)) = (&reference, &result) {
                    prop_assert_eq!(got.as_slice(), expected.as_slice());
                }
            }
        }
    }

    #[test]
    fn worker_panics_are_typed_at_every_width(
        db in arb_transaction_db(8, 40),
        mut config in arb_miner_config(),
        jitter_seed in any::<u64>(),
    ) {
        quiet_panics();
        config.parallel = true;
        // Panic on the very first emitted itemset: any input with at
        // least one frequent itemset must trip it, on whichever worker
        // happens to emit first.
        let poisoned = ExecBudget {
            panic_after_emits: Some(1),
            ..ExecBudget::unlimited()
        };
        let baseline = mine_on(
            Algorithm::FpGrowth,
            &db,
            &config,
            &ExecBudget::unlimited(),
            1,
            0,
        )
        .expect("unlimited mine succeeds");
        let mut rng = FaultRng::new(jitter_seed);
        for width in [1usize, 2, 8] {
            let _region = ContainedRegion::enter();
            let result = mine_on(
                Algorithm::FpGrowth,
                &db,
                &config,
                &poisoned,
                width,
                rng.next_u64(),
            );
            if baseline.as_slice().is_empty() {
                // Nothing is ever emitted, so the injection never fires.
                prop_assert!(result.is_ok(), "no emits, yet width {} failed", width);
            } else {
                match &result {
                    Err(MineError::WorkerPanic { message }) => prop_assert!(
                        message.contains("injected"),
                        "panic payload lost at width {}: {}",
                        width,
                        message
                    ),
                    other => prop_assert!(
                        false,
                        "width {}: expected WorkerPanic, got {:?}",
                        width,
                        other
                    ),
                }
            }
        }
    }

    /// Fuzzed-interleaving stress for the lock-free deque itself: one
    /// owner pushes `n_items` distinct values (popping a fuzzed fraction
    /// back LIFO as it goes, then draining), while up to 7 concurrent
    /// thieves steal FIFO. Every value must be observed exactly once
    /// across the owner and all thieves — a lost task would hang the
    /// pool, a duplicated one would double-execute a job.
    #[test]
    fn chase_lev_tasks_are_observed_exactly_once(
        n_items in 1usize..1200,
        n_thieves in 1usize..8,
        seed in any::<u64>(),
    ) {
        let deque = ChaseLev::<usize>::new();
        let done = AtomicBool::new(false);
        let mut rng = FaultRng::new(seed);
        let mut taken: Vec<usize> = Vec::new();
        let thief_hauls: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n_thieves)
                .map(|_| {
                    let (deque, done) = (&deque, &done);
                    s.spawn(move || {
                        let mut haul = Vec::new();
                        loop {
                            match deque.steal() {
                                Steal::Success(v) => haul.push(v),
                                Steal::Retry => std::thread::yield_now(),
                                Steal::Empty => {
                                    if done.load(Ordering::Acquire) {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                        haul
                    })
                })
                .collect();
            for v in 0..n_items {
                deque.push(v);
                if rng.next_u64().is_multiple_of(4) {
                    if let Some(got) = deque.pop() {
                        taken.push(got);
                    }
                }
            }
            while let Some(got) = deque.pop() {
                taken.push(got);
            }
            done.store(true, Ordering::Release);
            handles
                .into_iter()
                .map(|h| h.join().expect("thief thread panicked"))
                .collect()
        });
        let mut seen = vec![0u32; n_items];
        for &v in taken.iter().chain(thief_hauls.iter().flatten()) {
            prop_assert!(v < n_items, "value {} was never pushed", v);
            seen[v] += 1;
        }
        for (v, &count) in seen.iter().enumerate() {
            prop_assert_eq!(
                count, 1,
                "value {} observed {} times (owner took {}, thieves took {:?})",
                v, count, taken.len(),
                thief_hauls.iter().map(Vec::len).collect::<Vec<_>>()
            );
        }
    }

    /// Differential check for Eclat's dense-path kernel: the u64×4
    /// chunked AND+popcount must match the scalar word loop bit-for-bit
    /// on arbitrary bitsets — lengths 0..67 cover every tail residue
    /// mod 4 and mismatched operand lengths.
    #[test]
    fn simd_and_popcount_matches_scalar(
        a in proptest::collection::vec(any::<u64>(), 0..67),
        b in proptest::collection::vec(any::<u64>(), 0..67),
    ) {
        let chunked = irma_mine::simd::and_popcount(&a, &b);
        let scalar = irma_mine::simd::and_popcount_scalar(&a, &b);
        prop_assert_eq!(chunked, scalar);
    }
}
