//! Chaos suite: the fault-tolerance contract of `irma_core::try_analyze`.
//!
//! Seeded [`FaultPlan`]s throw corrupted input, injected stage panics,
//! forced budget trips, and failing trace-log writers at the fallible
//! pipeline — in isolation and in combination — and the suite asserts:
//!
//! * **no panic ever escapes** the `try_*` entry points (checked with a
//!   top-level `catch_unwind` around every run);
//! * every failure is a typed, stage-tagged `PipelineError`;
//! * a budget-tripped run that still succeeds **always** carries a
//!   `Degradation` record and marks the obs snapshot degraded;
//! * trace-log write failures degrade the snapshot but never fail the
//!   analysis;
//! * un-faulted plans produce results byte-identical to the infallible
//!   `analyze`;
//! * the streaming side holds the same line: a budget-tripped
//!   `SlidingWindowMiner::try_mine` never moves the drift baseline, and
//!   `irma_core::watch_feed` survives garbled input, budget trips, and a
//!   broken trace sink thrown at it simultaneously.
//!
//! The base seed is perturbed by `PROPTEST_SEED` (same knob as the rest
//! of the harness) so CI pins one stream and soak runs can explore.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

use std::io::Cursor;

use irma_check::fault::{
    base_csv, base_spec, failing_event_sink, BudgetFault, FaultPlan, InputFault,
};
use irma_core::{
    analyze, try_analyze_traced_hooked, watch_feed, Analysis, AnalysisConfig, BudgetBreach,
    Metrics, PipelineError, Provenance, WatchConfig,
};
use irma_data::read_csv_str;
use irma_mine::{BudgetGuard, ExecBudget, SlidingWindowMiner};
use irma_obs::Snapshot;

/// Non-zero while a plan is being executed: panics raised in there are
/// injected (or contained) on purpose and should not spray backtraces.
/// Panics outside — real test-assertion failures — still print.
static CONTAINED: AtomicUsize = AtomicUsize::new(0);

fn quiet_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CONTAINED.load(Ordering::SeqCst) == 0 {
                previous(info);
            }
        }));
    });
}

/// RAII depth marker for [`CONTAINED`] — decrements even when a panic
/// unwinds through the marked region.
struct ContainedRegion;

impl ContainedRegion {
    fn enter() -> ContainedRegion {
        CONTAINED.fetch_add(1, Ordering::SeqCst);
        ContainedRegion
    }
}

impl Drop for ContainedRegion {
    fn drop(&mut self) {
        CONTAINED.fetch_sub(1, Ordering::SeqCst);
    }
}

fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20260805)
}

fn chaos_config(plan: &FaultPlan) -> AnalysisConfig {
    let mut config = AnalysisConfig::default();
    config.miner.parallel = plan.parallel;
    config.rules.min_lift = 1.2;
    config.budget = plan.exec_budget();
    config
}

/// Runs one plan end to end and returns the outcome plus the obs
/// snapshot taken after the run.
fn run_plan(plan: &FaultPlan) -> (Result<Analysis, PipelineError>, Snapshot) {
    let csv = plan.apply_to_csv(&base_csv(plan.seed, 40));
    let mut metrics = Metrics::enabled();
    if plan.failing_sink {
        // A zero byte budget: every event write fails, so any run that
        // reaches the pipeline at all must notice the loss.
        metrics = metrics.with_event_sink(failing_event_sink(0));
    }
    let config = chaos_config(plan);
    let _region = ContainedRegion::enter();
    let result = match read_csv_str(&csv) {
        Err(e) => Err(PipelineError::Parse(e.to_string())),
        Ok(frame) => try_analyze_traced_hooked(
            &frame,
            &base_spec(),
            &config,
            &metrics,
            &Provenance::disabled(),
            &plan.stage_hooks(),
        ),
    };
    let snapshot = metrics.snapshot();
    (result, snapshot)
}

const KNOWN_STAGES: [&str; 6] = ["parse", "encode", "mine", "rules", "budget", "worker_panic"];

#[test]
fn no_panic_escapes_and_every_failure_is_typed() {
    quiet_panics();
    let base = base_seed();
    for offset in 0..128 {
        let plan = FaultPlan::from_seed(base.wrapping_add(offset));
        let outcome = catch_unwind(AssertUnwindSafe(|| run_plan(&plan)));
        let (result, snapshot) = match outcome {
            Ok(pair) => pair,
            Err(_) => panic!("panic escaped try_analyze for plan {plan:?}"),
        };
        match &result {
            Ok(analysis) => {
                // A degraded success is never silent, in either channel.
                if analysis.degradation.is_some() {
                    assert!(snapshot.degraded, "unflagged degraded result: {plan:?}");
                }
            }
            Err(err) => {
                assert!(
                    KNOWN_STAGES.contains(&err.stage()),
                    "unknown stage tag {} for plan {plan:?}",
                    err.stage()
                );
                // Display must render without panicking and carry text.
                assert!(!err.to_string().is_empty());
            }
        }
        if plan.failing_sink && !matches!(result, Err(PipelineError::Parse(_))) {
            // Any run that gets past parsing opens the root span, whose
            // event already hits the broken writer — so the run must be
            // flagged regardless of its outcome. A parse failure never
            // reaches the pipeline, so no event was ever attempted.
            assert!(snapshot.degraded, "failing sink left no mark: {plan:?}");
        }
    }
}

#[test]
fn clean_plans_match_the_infallible_pipeline_exactly() {
    quiet_panics();
    let base = base_seed();
    for offset in 0..16 {
        let plan = FaultPlan::clean(base.wrapping_add(offset));
        let (result, snapshot) = run_plan(&plan);
        let fallible = result.expect("clean plan must succeed");
        assert!(fallible.degradation.is_none());
        assert!(!snapshot.degraded);

        let csv = base_csv(plan.seed, 40);
        let frame = read_csv_str(&csv).expect("clean base csv parses");
        let infallible = analyze(&frame, &base_spec(), &chaos_config(&plan));
        assert_eq!(fallible.rules, infallible.rules);
        assert_eq!(fallible.frequent.as_slice(), infallible.frequent.as_slice());
        assert_eq!(fallible.summary(), infallible.summary());
    }
}

#[test]
fn nan_inf_cells_are_absorbed_not_fatal() {
    quiet_panics();
    let base = base_seed();
    for offset in 0..24 {
        let plan = FaultPlan {
            input: Some(InputFault::NanInf),
            ..FaultPlan::clean(base.wrapping_add(offset))
        };
        let (result, _) = run_plan(&plan);
        // The lossy value parser maps NaN to null and preprocessing
        // filters non-finite samples, so poisoned cells thin the data
        // but never fail the run.
        result.unwrap_or_else(|e| panic!("NaN/Inf corruption failed the run: {e} ({plan:?})"));
    }
}

#[test]
fn truncated_or_garbled_input_parses_or_fails_typed() {
    quiet_panics();
    let base = base_seed();
    for offset in 0..48 {
        for fault in [InputFault::Truncate, InputFault::Garble] {
            let plan = FaultPlan {
                input: Some(fault),
                ..FaultPlan::clean(base.wrapping_add(offset))
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| run_plan(&plan)));
            let (result, _) = outcome.unwrap_or_else(|_| panic!("panic escaped: {plan:?}"));
            if let Err(err) = result {
                assert!(
                    matches!(err, PipelineError::Parse(_) | PipelineError::Encode(_)),
                    "input corruption must fail in parse/encode, got {err} ({plan:?})"
                );
            }
        }
    }
}

#[test]
fn budget_tripped_successes_always_carry_degradation() {
    quiet_panics();
    let base = base_seed();
    for cap in 1..=16 {
        let plan = FaultPlan {
            budget: Some(BudgetFault::ItemsetCap(cap)),
            ..FaultPlan::clean(base.wrapping_add(cap))
        };
        let (result, snapshot) = run_plan(&plan);
        match result {
            Ok(analysis) => {
                let degradation = analysis
                    .degradation
                    .as_ref()
                    .unwrap_or_else(|| panic!("cap {cap} run succeeded without a record"));
                assert!(!degradation.steps.is_empty());
                assert!(snapshot.degraded);
                assert!(snapshot
                    .counters
                    .iter()
                    .any(|(name, v)| name == "core.degradation_steps" && *v > 0));
                // The relaxed knobs must actually be relaxed.
                let default = AnalysisConfig::default();
                assert!(
                    degradation.final_min_support > default.miner.min_support
                        || degradation.final_max_len < default.miner.max_len
                );
            }
            Err(PipelineError::BudgetExceeded { breach, attempts }) => {
                assert!(matches!(breach, BudgetBreach::Itemsets { .. }));
                assert!(attempts >= 1);
            }
            Err(other) => panic!("cap {cap}: unexpected error {other}"),
        }
    }
}

#[test]
fn zero_deadline_exhausts_the_ladder_deterministically() {
    quiet_panics();
    let plan = FaultPlan {
        budget: Some(BudgetFault::ZeroDeadline),
        ..FaultPlan::clean(base_seed())
    };
    let (result, _) = run_plan(&plan);
    match result {
        Err(PipelineError::BudgetExceeded { breach, attempts }) => {
            assert!(matches!(breach, BudgetBreach::Deadline { .. }));
            // Retries share the run-wide token, so a zero deadline runs
            // the whole ladder and fails every rung.
            assert_eq!(attempts as usize, irma_core::MAX_DEGRADATION_RETRIES + 1);
        }
        other => panic!("expected deadline exhaustion, got {other:?}"),
    }
}

#[test]
fn injected_stage_panics_come_back_stage_tagged() {
    quiet_panics();
    for stage in ["encode", "mine", "rules"] {
        let plan = FaultPlan {
            stage_panic: Some(stage),
            ..FaultPlan::clean(base_seed())
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| run_plan(&plan)));
        let (result, _) = outcome.unwrap_or_else(|_| panic!("{stage} panic escaped"));
        let err = result.expect_err("injected stage panic must fail the run");
        assert_eq!(err.stage(), stage, "{err}");
        assert!(err.to_string().contains("injected"), "{err}");
    }
}

#[test]
fn poisoned_workers_are_contained_per_rank() {
    quiet_panics();
    let plan = FaultPlan {
        budget: Some(BudgetFault::WorkerPanic(1)),
        parallel: true,
        ..FaultPlan::clean(base_seed())
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| run_plan(&plan)));
    let (result, _) = outcome.expect("worker panic escaped the pipeline");
    match result {
        Err(PipelineError::WorkerPanic { stage, message }) => {
            assert_eq!(stage, "mine");
            assert!(message.contains("injected"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

#[test]
fn budget_trip_leaves_the_streaming_baseline_untouched() {
    quiet_panics();
    let mut miner = SlidingWindowMiner::new(64, irma_mine::MinerConfig::with_min_support(0.2));
    for i in 0..32u32 {
        miner.push([i % 4, 4 + i % 2]);
    }
    // A successful mine commits the drift baseline for the first regime.
    miner.mine();
    // Shift the regime so the window has drifted well away from it.
    for i in 0..32u32 {
        miner.push([6, 7 - i % 2]);
    }
    let drift_before = miner.drift();
    assert!(drift_before > 0.5, "regime shift must register as drift");
    // A one-itemset cap can never fit this window: the attempt must fail
    // *without* committing a new baseline — otherwise the next drift
    // check would silently compare against a regime that was never mined.
    let tight = BudgetGuard::new(&ExecBudget {
        max_itemsets: Some(1),
        ..ExecBudget::default()
    });
    let region = ContainedRegion::enter();
    let err = miner.try_mine(&tight);
    drop(region);
    assert!(err.is_err(), "one itemset can never fit this window");
    assert_eq!(
        miner.drift(),
        drift_before,
        "failed mine must not move the drift baseline"
    );
    // The miner is still healthy: an unlimited re-mine succeeds and only
    // *then* does the baseline advance.
    let frequent = miner.try_mine(&BudgetGuard::unlimited()).expect("recovers");
    assert!(!frequent.as_slice().is_empty());
    assert!(miner.drift() < drift_before);
}

#[test]
fn watch_daemon_survives_garbled_feed_budget_trips_and_broken_sink() {
    quiet_panics();
    // Garbled lines, a pattern dense enough to trip a small itemset cap,
    // and an event sink that rejects every write — all at once.
    let mut feed = String::new();
    for i in 0..200u32 {
        feed.push_str(&format!("{},{},12\n", i % 8, 8 + i % 4));
        if i % 9 == 0 {
            feed.push_str("not,a,number\n");
        }
        if i % 17 == 0 {
            feed.push_str("4,\n");
        }
    }
    let metrics = Metrics::enabled().with_event_sink(failing_event_sink(0));
    let config = WatchConfig {
        window: 32,
        warmup: 8,
        cadence: 16,
        drift_threshold: f64::INFINITY,
        budget: ExecBudget {
            max_itemsets: Some(4),
            ..ExecBudget::default()
        },
        ..WatchConfig::default()
    };
    let region = ContainedRegion::enter();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        watch_feed(Cursor::new(feed), &config, &metrics, |_| {})
    }));
    drop(region);
    let summary = outcome.expect("watch daemon must not panic under combined faults");
    assert_eq!(summary.garbled_lines, 23 + 12, "every bad line counted");
    assert_eq!(
        summary.arrivals + summary.sampled_out,
        200,
        "every valid line admitted or counted as sampled out"
    );
    assert!(summary.emissions >= 1, "daemon kept emitting: {summary:?}");
    assert!(
        summary.degraded_emissions >= 1 || summary.failed_emissions >= 1,
        "itemset cap must surface as degradation or failure: {summary:?}"
    );
    let snapshot = metrics.snapshot();
    assert!(snapshot.degraded, "broken sink must flag the snapshot");
    assert!(metrics.trace_log_write_errors() > 0);
}

#[test]
fn failing_sink_degrades_but_never_fails_the_analysis() {
    quiet_panics();
    let plan = FaultPlan {
        failing_sink: true,
        ..FaultPlan::clean(base_seed())
    };
    let (result, snapshot) = run_plan(&plan);
    let analysis = result.expect("a broken trace log must not fail the run");
    assert!(analysis.degradation.is_none(), "no knobs were relaxed");
    assert!(snapshot.degraded, "lossy trace log must flag the snapshot");
    let write_errors = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "trace_log_write_errors_total")
        .map(|(_, v)| *v)
        .expect("write-error counter must surface in the snapshot");
    assert!(write_errors > 0);
}
