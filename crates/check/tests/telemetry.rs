//! Telemetry invariants: the bounded histogram and the scheduler
//! counters must stay honest under fuzzing.
//!
//! * The log2 histogram's quantile estimate brackets the exact
//!   nearest-rank value: `exact <= estimate < 2 * exact` for samples of
//!   at least 1 ns (the estimate is the inclusive upper bound of the
//!   bucket holding the rank sample, and log2 buckets are never more
//!   than one doubling wide). Count, sum and max stay exact, and the
//!   cumulative finite buckets plus overflow reconcile with the count.
//! * The pool's scheduler counters conserve work at every width and
//!   under fuzzed steal orders: between parallel operations, jobs
//!   executed equals jobs submitted (injector pushes plus local
//!   pushes), and no worker reports more condvar wakes than parks.
//!
//! Case count and seeding follow the harness defaults (256 cases,
//! `PROPTEST_CASES` / `PROPTEST_SEED` overridable, corpus replay on).

use std::time::Duration;

use proptest::prelude::*;

use irma_obs::Histogram;
use rayon::ThreadPoolBuilder;

/// Exact nearest-rank quantile over raw samples (the oracle).
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// `join`-splits down to single additions; every level forks one job.
fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = rayon::join(|| fib(n - 1), || fib(n - 2));
    a + b
}

proptest! {
    #![proptest_config(irma_check::config())]

    #[test]
    fn histogram_quantiles_bracket_the_exact_value(
        mut samples in proptest::collection::vec(1u64..=u64::from(u32::MAX), 1..200),
        qs in proptest::collection::vec(0.001f64..=1.0, 1..8),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(Duration::from_nanos(s));
        }
        samples.sort_unstable();

        // Exact aggregates survive bucketing.
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum().as_nanos(), samples.iter().map(|&s| u128::from(s)).sum());
        prop_assert_eq!(h.max().as_nanos(), u128::from(*samples.last().unwrap()));

        // The finite cumulative buckets top out at count minus whatever
        // overflowed (nothing can here: samples cap at u32::MAX ns).
        let buckets = h.cumulative_buckets();
        prop_assert_eq!(buckets.last().unwrap().1, h.count());

        for q in qs {
            let exact = exact_nearest_rank(&samples, q);
            let estimate = h.quantile_estimate(q).as_nanos() as u64;
            prop_assert!(
                exact <= estimate,
                "q={q}: estimate {estimate} below exact {exact}"
            );
            prop_assert!(
                estimate < 2 * exact,
                "q={q}: estimate {estimate} not within one log2 bucket of exact {exact}"
            );
        }
    }

    #[test]
    fn sched_counters_conserve_work_at_every_width(
        width in 1usize..=8,
        jitter in any::<u64>(),
        depth in 8u64..=13,
    ) {
        let pool = ThreadPoolBuilder::new()
            .num_threads(width)
            .steal_jitter(jitter)
            .build()
            .expect("pool builds");
        let expected = [21, 34, 55, 89, 144, 233][(depth - 8) as usize];
        prop_assert_eq!(pool.install(|| fib(depth)), expected);

        let snapshot = pool.sched_stats();
        if width <= 1 {
            // Sequential pools run inline: no workers, no counters.
            prop_assert!(snapshot.workers.is_empty());
            return Ok(());
        }
        prop_assert_eq!(snapshot.workers.len(), width);
        // Between operations every submitted job has been executed —
        // jobs_executed increments before the job body runs, and the
        // operation cannot complete before its jobs do.
        prop_assert_eq!(
            snapshot.jobs_executed(),
            snapshot.jobs_submitted(),
            "executed != submitted at width {} (jitter {:#x})",
            width,
            jitter
        );
        // The install migrates one job through the injector.
        prop_assert!(snapshot.injector_pushes >= 1);
        for worker in &snapshot.workers {
            // A wake implies a park that actually blocked.
            prop_assert!(
                worker.wakes <= worker.parks,
                "worker reports {} wakes but only {} parks",
                worker.wakes,
                worker.parks
            );
            // Attempts are derived, so the parts always reconcile.
            prop_assert_eq!(
                worker.steal_attempts(),
                worker.steal_successes + worker.steal_empty + worker.steal_retries
            );
        }
    }
}
