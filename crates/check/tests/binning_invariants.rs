//! Binning invariants: histograms conserve mass, assignment is monotone
//! with right-closed tie semantics, and non-finite inputs never shift an
//! edge.

use proptest::prelude::*;

use irma_prep::{BinEdges, BinningScheme};

fn arb_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e9f64..1.0e9, 1..200)
}

fn arb_scheme() -> impl Strategy<Value = BinningScheme> {
    proptest::any::<bool>().prop_map(|eq_freq| {
        if eq_freq {
            BinningScheme::EqualFrequency
        } else {
            BinningScheme::EqualWidth
        }
    })
}

proptest! {
    #![proptest_config(irma_check::config())]

    #[test]
    fn histogram_conserves_mass(
        values in arb_values(),
        n_bins in 1usize..=8,
        scheme in arb_scheme(),
    ) {
        let edges = BinEdges::fit(&values, n_bins, scheme).expect("non-empty input");
        let hist = edges.histogram(&values);
        prop_assert_eq!(hist.len(), n_bins);
        prop_assert_eq!(hist.iter().sum::<usize>(), values.len());
    }

    #[test]
    fn assign_is_monotone_and_in_range(
        values in arb_values(),
        probes in proptest::collection::vec(-2.0e9f64..2.0e9, 2..40),
        n_bins in 1usize..=8,
        scheme in arb_scheme(),
    ) {
        let edges = BinEdges::fit(&values, n_bins, scheme).expect("non-empty input");
        let mut sorted = probes;
        sorted.sort_unstable_by(f64::total_cmp);
        let bins: Vec<usize> = sorted.iter().map(|&v| edges.assign(v)).collect();
        for pair in bins.windows(2) {
            prop_assert!(pair[0] <= pair[1], "assign not monotone: {:?}", bins);
        }
        for &b in &bins {
            prop_assert!(b < n_bins);
        }
    }

    #[test]
    fn edges_sorted_and_ties_right_closed(
        values in arb_values(),
        n_bins in 2usize..=8,
        scheme in arb_scheme(),
    ) {
        let edges = BinEdges::fit(&values, n_bins, scheme).expect("non-empty input");
        let interior = edges.edges();
        prop_assert_eq!(interior.len(), n_bins - 1);
        for pair in interior.windows(2) {
            prop_assert!(pair[0] <= pair[1], "edges unsorted: {:?}", interior);
        }
        // Right-closed intervals: a value equal to edge i lands at or
        // below bin i (strictly below when earlier edges tie with it).
        for (i, &edge) in interior.iter().enumerate() {
            prop_assert!(edges.assign(edge) <= i, "edge {} assigned above its bin", edge);
        }
    }

    #[test]
    fn non_finite_values_never_shift_edges(
        values in arb_values(),
        // Positions (mod len+1) at which to splice sentinels in.
        splices in proptest::collection::vec((0usize..256, 0u8..3), 0..8),
        n_bins in 1usize..=8,
        scheme in arb_scheme(),
    ) {
        let mut dirty = values.clone();
        for (pos, kind) in splices {
            let sentinel = match kind {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
            let at = pos % (dirty.len() + 1);
            dirty.insert(at, sentinel);
        }
        let clean = BinEdges::fit(&values, n_bins, scheme).expect("non-empty input");
        let spliced = BinEdges::fit(&dirty, n_bins, scheme).expect("finite values remain");
        prop_assert_eq!(clean, spliced);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in arb_values(),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..10),
    ) {
        let mut sorted = values;
        sorted.sort_unstable_by(f64::total_cmp);
        let mut qs = qs;
        qs.sort_unstable_by(f64::total_cmp);
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let v = irma_prep::quantile_sorted(&sorted, q);
            prop_assert!((lo..=hi).contains(&v), "quantile {} out of range", v);
            prop_assert!(v >= last, "quantile not monotone in q");
            last = v;
        }
    }
}
