//! Pruning invariants: marking semantics make the outcome independent of
//! input order, keyword-free rules never participate, and kept + pruned
//! partition the keyword-relevant input.

use proptest::prelude::*;

use irma_check::generators::{arb_transaction_db, shuffled};
use irma_mine::{fpgrowth, ItemId, MinerConfig};
use irma_rules::{generate_rules, prune_rules, PruneParams, Rule, RuleConfig, RuleRole};

fn arb_prune_params() -> impl Strategy<Value = PruneParams> {
    (1.0f64..3.0, 1.0f64..3.0).prop_map(|(c_lift, c_supp)| PruneParams { c_lift, c_supp })
}

/// Rules mined from a random database at permissive thresholds, so the
/// lattice contains the nested families pruning operates on.
fn rules_from(db: &irma_mine::TransactionDb) -> Vec<Rule> {
    let config = MinerConfig {
        min_support: 0.05,
        max_len: 4,
        parallel: false,
    };
    generate_rules(&fpgrowth(db, &config), &RuleConfig::with_min_lift(0.0))
}

proptest! {
    #![proptest_config(irma_check::config())]

    #[test]
    fn outcome_is_order_independent(
        db in arb_transaction_db(7, 50),
        keyword in 0u32..7,
        params in arb_prune_params(),
        draws in proptest::collection::vec(proptest::any::<u64>(), 1..32),
    ) {
        let rules = rules_from(&db);
        let baseline = prune_rules(&rules, keyword as ItemId, &params);
        let permuted = prune_rules(&shuffled(&rules, &draws), keyword as ItemId, &params);
        prop_assert_eq!(&baseline.kept, &permuted.kept);
        prop_assert_eq!(&baseline.pruned, &permuted.pruned);
    }

    #[test]
    fn kept_and_pruned_partition_relevant_rules(
        db in arb_transaction_db(7, 50),
        keyword in 0u32..7,
        params in arb_prune_params(),
    ) {
        let rules = rules_from(&db);
        let keyword = keyword as ItemId;
        let relevant = rules
            .iter()
            .filter(|r| r.role(keyword) != RuleRole::Unrelated)
            .count();
        let outcome = prune_rules(&rules, keyword, &params);
        prop_assert_eq!(outcome.total(), relevant);
        // Every reported rule (kept or pruned) involves the keyword, and
        // no rule appears on both sides.
        for rule in &outcome.kept {
            prop_assert!(rule.role(keyword) != RuleRole::Unrelated, "{}", rule);
        }
        for record in &outcome.pruned {
            prop_assert!(record.rule.role(keyword) != RuleRole::Unrelated, "{}", record.rule);
            prop_assert!(
                !outcome.kept.contains(&record.rule),
                "{} both kept and pruned", record.rule
            );
        }
    }

    #[test]
    fn dominators_come_from_the_input(
        db in arb_transaction_db(7, 50),
        keyword in 0u32..7,
        params in arb_prune_params(),
    ) {
        // Each prune record points at a rule that actually exists in the
        // keyword-relevant input ("exists two rules" semantics: the
        // dominator may itself have been pruned, but never invented).
        let rules = rules_from(&db);
        let outcome = prune_rules(&rules, keyword as ItemId, &params);
        for record in &outcome.pruned {
            let (ante, cons) = &record.dominated_by;
            prop_assert!(
                rules
                    .iter()
                    .any(|r| &r.antecedent == ante && &r.consequent == cons),
                "dominator {} => {} not in input", ante, cons
            );
        }
    }

    #[test]
    fn outcome_is_deterministic(
        db in arb_transaction_db(7, 50),
        keyword in 0u32..7,
        params in arb_prune_params(),
    ) {
        // The implementation groups candidate pairs through a HashMap; the
        // canonical sorts must fully mask its iteration order, making two
        // runs byte-identical (kept order, pruned order, and provenance).
        //
        // Note: kept-set *size* is deliberately not asserted monotone in
        // the margins — the harness disproved that hypothesis: growing
        // C_lift can flip which rule of a nested pair loses (condition 1
        // prunes the long rule where the support branch would have pruned
        // the short one), and via marking chains that can leave MORE rules
        // alive, not fewer.
        let rules = rules_from(&db);
        let first = prune_rules(&rules, keyword as ItemId, &params);
        let second = prune_rules(&rules, keyword as ItemId, &params);
        prop_assert_eq!(&first.kept, &second.kept);
        prop_assert_eq!(&first.pruned, &second.pruned);
    }
}
