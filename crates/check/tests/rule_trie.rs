//! Trie-vs-flat pruning differential suite.
//!
//! The trie-driven `prune_rules_traced` promises a *byte-identical*
//! output contract to the flat all-pairs implementation it replaced —
//! same kept rules, same `PruneRecord` sequence, same provenance records
//! — at any rayon pool width. This suite pits it against the preserved
//! oracle ([`irma_check::flat_prune`]) on mined and synthetic rule sets
//! at widths 1/2/8, checks the raw trie walks against brute-force subset
//! scans, and pins the non-monotone `C_lift` counterexample from the
//! `provenance_fixture` suite at both margins.

use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

use irma_check::flat_prune::flat_prune_rules;
use irma_check::generators::arb_transaction_db;
use irma_mine::{fpgrowth, is_sorted_subset, ItemId, Itemset, MinerConfig, TransactionDb};
use irma_obs::{Metrics, Provenance};
use irma_rules::{generate_rules, prune_rules_traced, PruneParams, Rule, RuleConfig, RuleTrie};

/// The pool widths every equivalence case runs at (the determinism claim:
/// group parallelism must not leak into the output).
const WIDTHS: [usize; 3] = [1, 2, 8];

fn arb_prune_params() -> impl Strategy<Value = PruneParams> {
    (1.0f64..3.0, 1.0f64..3.0).prop_map(|(c_lift, c_supp)| PruneParams { c_lift, c_supp })
}

/// Asserts trie prune ≡ flat prune byte-identically at every width.
fn assert_equivalent(
    rules: &[Rule],
    keyword: ItemId,
    params: &PruneParams,
) -> Result<(), TestCaseError> {
    let flat_provenance = Provenance::enabled();
    let expected = flat_prune_rules(rules, keyword, params, &flat_provenance);
    let expected_records = flat_provenance.records();
    for &width in &WIDTHS {
        let pool = ThreadPoolBuilder::new()
            .num_threads(width)
            .build()
            .expect("pool");
        let trie_provenance = Provenance::enabled();
        let actual = pool.install(|| {
            prune_rules_traced(
                rules,
                keyword,
                params,
                &Metrics::disabled(),
                &trie_provenance,
            )
        });
        prop_assert_eq!(&expected.kept, &actual.kept, "kept set at width {}", width);
        prop_assert_eq!(
            &expected.pruned,
            &actual.pruned,
            "PruneRecord sequence at width {}",
            width
        );
        prop_assert_eq!(
            &expected_records,
            &trie_provenance.records(),
            "provenance records at width {}",
            width
        );
    }
    Ok(())
}

/// Rules mined from a random database at permissive thresholds, so the
/// lattice contains the nested families pruning operates on.
fn rules_from(db: &TransactionDb) -> Vec<Rule> {
    let config = MinerConfig {
        min_support: 0.05,
        max_len: 4,
        parallel: false,
    };
    generate_rules(&fpgrowth(db, &config), &RuleConfig::with_min_lift(0.0))
}

/// Synthetic rules straight from bitmask draws: both sides over a 6-item
/// universe (so nesting is common), quantized metrics (so comparisons hit
/// both margins of every branch).
fn arb_synthetic_rules() -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec((1u32..64, 1u32..64, 1u32..=20, 1u32..=40), 0..24).prop_map(|draws| {
        draws
            .into_iter()
            .filter_map(|(ante_mask, cons_mask, supp_q, lift_q)| {
                let cons_mask = cons_mask & !ante_mask;
                if cons_mask == 0 {
                    return None;
                }
                let items = |mask: u32| (0..6).filter(move |bit| mask & (1 << bit) != 0);
                let support = f64::from(supp_q) / 20.0;
                Some(Rule {
                    antecedent: Itemset::from_items(items(ante_mask)),
                    consequent: Itemset::from_items(items(cons_mask)),
                    support_count: u64::from(supp_q) * 50,
                    support,
                    confidence: support.sqrt(),
                    lift: f64::from(lift_q) / 8.0,
                })
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(irma_check::config())]

    #[test]
    fn mined_rules_prune_identically(
        db in arb_transaction_db(7, 50),
        keyword in 0u32..7,
        params in arb_prune_params(),
    ) {
        let rules = rules_from(&db);
        assert_equivalent(&rules, keyword as ItemId, &params)?;
    }

    #[test]
    fn synthetic_nested_families_prune_identically(
        rules in arb_synthetic_rules(),
        keyword in 0u32..6,
        params in arb_prune_params(),
    ) {
        assert_equivalent(&rules, keyword as ItemId, &params)?;
    }

    #[test]
    fn trie_walks_match_brute_force_subset_scans(
        masks in proptest::collection::vec(1u32..4096, 1..40),
        query_mask in 1u32..4096,
    ) {
        let side = |mask: u32| -> Vec<ItemId> {
            (0..12).filter(|bit| mask & (1 << bit) != 0).collect()
        };
        let sides: Vec<Vec<ItemId>> = masks.iter().map(|&m| side(m)).collect();
        let trie = RuleTrie::from_sides(sides.iter().map(|s| s.as_slice()));
        let query = side(query_mask);

        let mut subs = Vec::new();
        let mut sups = Vec::new();
        trie.proper_subsets_of(&query, &mut subs);
        trie.proper_supersets_of(&query, &mut sups);
        subs.sort_unstable();
        sups.sort_unstable();

        let expect = |keep: &dyn Fn(&[ItemId]) -> bool| -> Vec<u32> {
            sides
                .iter()
                .enumerate()
                .filter(|(_, s)| keep(s))
                .map(|(i, _)| i as u32)
                .collect()
        };
        let expected_subs =
            expect(&|s| s.len() < query.len() && is_sorted_subset(s, &query));
        let expected_sups =
            expect(&|s| s.len() > query.len() && is_sorted_subset(&query, s));
        prop_assert_eq!(subs, expected_subs);
        prop_assert_eq!(sups, expected_sups);
    }
}

/// The `provenance_fixture` counterexample: pruning is not monotone in
/// `C_lift` — raising the margin from 1.0 to 1.5 flips which rule wins a
/// condition-1 comparison and *changes* (not merely grows) the kept set.
/// Both margins must still be byte-identical between trie and flat.
#[test]
fn pinned_c_lift_counterexample_is_identical_at_both_margins() {
    const A: u32 = 0;
    const B: u32 = 1;
    const K: u32 = 2;
    let mut txns: Vec<Vec<u32>> = vec![vec![], vec![], vec![A], vec![A, B]];
    txns.extend(std::iter::repeat_n(vec![B, K], 2));
    txns.extend(std::iter::repeat_n(vec![A, B, K], 4));
    let db = TransactionDb::from_transactions(txns);
    let frequent = fpgrowth(
        &db,
        &MinerConfig {
            min_support: 0.05,
            max_len: 3,
            parallel: false,
        },
    );
    let rules = generate_rules(
        &frequent,
        &RuleConfig {
            min_lift: 1.0,
            min_confidence: 0.0,
            min_support: 0.0,
        },
    );

    for c_lift in [1.0, 1.5] {
        let params = PruneParams {
            c_lift,
            c_supp: 1.5,
        };
        assert_equivalent(&rules, K, &params).unwrap();
    }

    // And the flip itself still happens through the trie path: at the
    // tight margin only R3 `{b} => {K}` survives as a cause; relaxing the
    // margin resurrects R1 `{a} => {K}`.
    let kept_antecedents = |c_lift: f64| -> Vec<Vec<u32>> {
        let outcome = prune_rules_traced(
            &rules,
            K,
            &PruneParams {
                c_lift,
                c_supp: 1.5,
            },
            &Metrics::disabled(),
            &Provenance::disabled(),
        );
        let mut antecedents: Vec<Vec<u32>> = outcome
            .kept
            .iter()
            .filter(|r| r.consequent.contains(K))
            .map(|r| r.antecedent.items().to_vec())
            .collect();
        antecedents.sort();
        antecedents
    };
    assert_eq!(kept_antecedents(1.0), vec![vec![B]]);
    assert_eq!(kept_antecedents(1.5), vec![vec![A], vec![B]]);
}
