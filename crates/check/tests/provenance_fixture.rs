//! Deterministic provenance fixture: the ROADMAP's non-monotone `C_lift`
//! counterexample, rendered as a readable marking chain.
//!
//! Pruning is *not* monotone in the lift margin: raising `C_lift` makes
//! condition 1's lift branch harder to trigger, which can flip who wins a
//! pairwise comparison and thereby change — not merely shrink or grow —
//! the surviving rule set. This fixture pins the smallest database we
//! know of that exhibits the flip and checks that the provenance recorder
//! tells the story correctly at both margins.
//!
//! Items `a = 0`, `b = 1`, keyword `K = 2`; ten transactions
//! `2×{}, 1×{a}, 1×{a,b}, 2×{b,K}, 4×{a,b,K}`. The three cause rules:
//!
//! | rule            | support | confidence | lift  |
//! |-----------------|---------|------------|-------|
//! | R1 `{a} => {K}`   | 0.4   | 0.667      | 1.111 |
//! | R2 `{a,b} => {K}` | 0.4   | 0.800      | 1.333 |
//! | R3 `{b} => {K}`   | 0.6   | 0.857      | 1.429 |
//!
//! With `C_supp = 1.5` fixed:
//!
//! * `C_lift = 1.0`: R3's lift beats R2 with margin (R2 pruned by R3),
//!   and R2's equal support kills R1 on the support branch — kept causes
//!   `{R3}`.
//! * `C_lift = 1.5`: R3's lift no longer clears the margin over R2, but
//!   the *short* rule R1 now wins the general/specific comparison against
//!   R2 on the lift branch (`1.5 × 1.111 > 1.333`) — the winner flips,
//!   and the kept causes are `{R1, R3}`.

use irma_mine::{Algorithm, MinerConfig, TransactionDb};
use irma_obs::{Metrics, Provenance, PruneRole};
use irma_rules::{generate_rules_traced, KeywordAnalysis, PruneParams, RuleConfig};

const A: u32 = 0;
const B: u32 = 1;
const K: u32 = 2;

fn fixture_db() -> TransactionDb {
    let mut txns: Vec<Vec<u32>> = vec![vec![], vec![], vec![A]];
    txns.push(vec![A, B]);
    txns.extend(std::iter::repeat_n(vec![B, K], 2));
    txns.extend(std::iter::repeat_n(vec![A, B, K], 4));
    TransactionDb::from_transactions(txns)
}

fn label(id: u32) -> String {
    match id {
        A => "a".to_string(),
        B => "b".to_string(),
        K => "K".to_string(),
        other => format!("item{other}"),
    }
}

/// Mines the fixture and runs the keyword analysis at the given lift
/// margin, returning the provenance and the kept cause antecedents.
fn run_at(c_lift: f64) -> (Provenance, Vec<Vec<u32>>) {
    let db = fixture_db();
    let frequent = Algorithm::FpGrowth.mine(
        &db,
        &MinerConfig {
            min_support: 0.05,
            max_len: 3,
            parallel: false,
        },
    );
    let config = RuleConfig {
        min_lift: 1.0,
        min_confidence: 0.0,
        min_support: 0.0,
    };
    let provenance = Provenance::enabled();
    let metrics = Metrics::disabled();
    let rules = generate_rules_traced(&frequent, &config, &metrics, &provenance);
    let analysis = KeywordAnalysis::run_traced(
        &rules,
        K,
        &PruneParams {
            c_lift,
            c_supp: 1.5,
        },
        &metrics,
        &provenance,
    );
    let mut antecedents: Vec<Vec<u32>> = analysis
        .causes
        .iter()
        .map(|r| r.antecedent.items().to_vec())
        .collect();
    antecedents.sort();
    (provenance, antecedents)
}

#[test]
fn tight_margin_keeps_only_the_strongest_cause() {
    let (provenance, causes) = run_at(1.0);
    assert_eq!(causes, vec![vec![B]], "only R3 survives at C_lift=1.0");

    // R1 {a}=>{K} dies on the support branch against the equal-support,
    // higher-lift specialization R2.
    let r1 = provenance.get(&[A], &[K]).expect("R1 recorded");
    let kill = r1.killed_by().expect("R1 was pruned");
    assert_eq!(kill.condition, 1);
    assert_eq!(kill.branch, "support");
    assert_eq!(kill.opponent, (vec![A, B], vec![K]));

    // R2 {a,b}=>{K} dies on the lift branch against R3.
    let r2 = provenance.get(&[A, B], &[K]).expect("R2 recorded");
    let kill = r2.killed_by().expect("R2 was pruned");
    assert_eq!(kill.condition, 1);
    assert_eq!(kill.branch, "lift");
    assert_eq!(kill.opponent, (vec![B], vec![K]));

    let r3 = provenance.get(&[B], &[K]).expect("R3 recorded");
    assert_eq!(r3.kept, Some(true));
    assert!(r3.killed_by().is_none());
}

#[test]
fn loose_margin_flips_the_condition1_winner() {
    let (provenance, causes) = run_at(1.5);
    assert_eq!(
        causes,
        vec![vec![A], vec![B]],
        "R1 *reappears* at the looser margin — pruning is not monotone in C_lift"
    );

    // The same pair (R1, R2) is decided the other way around: the short
    // general rule R1 is now the winner, via the lift branch.
    let r2 = provenance.get(&[A, B], &[K]).expect("R2 recorded");
    let kill = r2.killed_by().expect("R2 was pruned");
    assert_eq!(kill.condition, 1);
    assert_eq!(kill.branch, "lift");
    assert_eq!(kill.opponent, (vec![A], vec![K]), "winner flipped to R1");

    let r1 = provenance.get(&[A], &[K]).expect("R1 recorded");
    assert_eq!(r1.kept, Some(true));
    let win = r1
        .steps
        .iter()
        .find(|s| s.role == PruneRole::Winner && s.opponent == (vec![A, B], vec![K]))
        .expect("R1 records its win over R2");
    assert_eq!(win.branch, "lift");
}

#[test]
fn explain_renders_the_chain_at_both_margins() {
    // At the tight margin, explaining R1 walks the chain: R1 lost to R2,
    // and R2's own fate is a loss to R3, which was kept.
    let (provenance, _) = run_at(1.0);
    let text = provenance
        .render_explain(&[A], &[K], &label)
        .expect("R1 has a record");
    assert!(text.contains("LOST to {a, b} => {K}"), "{text}");
    assert!(text.contains("the winner's own fate:"), "{text}");
    assert!(text.contains("LOST to {b} => {K}"), "{text}");
    assert!(text.contains("verdict: KEPT"), "{text}");
    assert!(text.contains("condition 1 (support branch"), "{text}");

    // At the loose margin the flip is visible in the rendered chain: R2's
    // killer is now R1 (whose own verdict is KEPT), while R3's later win
    // over the already-dead R2 renders as an echo edge, not the cause.
    let (provenance, _) = run_at(1.5);
    let text = provenance
        .render_explain(&[A, B], &[K], &label)
        .expect("R2 has a record");
    assert!(text.contains("LOST to {a} => {K}"), "{text}");
    assert!(text.contains("the winner's own fate:"), "{text}");
    assert!(text.contains("verdict: KEPT"), "{text}");
    assert!(
        text.contains("PRUNED by condition 1 (winner: {a} => {K})"),
        "{text}"
    );
    assert!(
        text.contains("LOST to {b} => {K}") && text.contains("[already dead]"),
        "marking semantics: R3's win over the dead R2 stays visible as an echo edge\n{text}"
    );
}
