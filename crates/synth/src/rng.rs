//! Hand-rolled samplers for the trace generator.
//!
//! The workspace deliberately depends only on `rand` (not `rand_distr`), so
//! the handful of distributions the simulator needs — normal, log-normal,
//! Zipf-weighted categorical, exponential — are implemented here.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates the deterministic RNG used across the generator.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Standard normal sample via the Box–Muller transform.
pub fn standard_normal(rng: &mut SmallRng) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with mean `mu` and standard deviation `sigma`.
pub fn normal(rng: &mut SmallRng, mu: f64, sigma: f64) -> f64 {
    mu + sigma * standard_normal(rng)
}

/// Log-normal sample: `exp(N(mu, sigma))`.
///
/// Runtimes and queue waits in production traces are long-tailed; the paper
/// calls this out as the reason equal-width binning fails (§III-E).
pub fn lognormal(rng: &mut SmallRng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential sample with the given rate (`1 / mean`).
pub fn exponential(rng: &mut SmallRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Clamps a sample into `[lo, hi]`.
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    v.max(lo).min(hi)
}

/// A discrete distribution sampled by binary search over cumulative
/// weights. Deterministic given the RNG stream.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds from non-negative weights (not necessarily normalized).
    ///
    /// Panics if all weights are zero or any is negative/non-finite.
    pub fn new(weights: &[f64]) -> Categorical {
        assert!(!weights.is_empty(), "empty weight vector");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "all weights zero");
        for c in &mut cumulative {
            *c /= total;
        }
        // Guarantee the last bucket is reachable despite rounding.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Categorical { cumulative }
    }

    /// Samples an index.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen::<f64>();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cumulative.len() - 1)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false; a categorical has at least one bucket.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Zipf weights `1 / rank^s` for `n` ranks — used for user and job-group
/// activity skew (a few heavy users dominate production traces).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (1..=n).map(|rank| 1.0 / (rank as f64).powf(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments() {
        let mut rng = seeded_rng(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_long_tailed() {
        let mut rng = seeded_rng(8);
        let samples: Vec<f64> = (0..10_000).map(|_| lognormal(&mut rng, 1.0, 1.5)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[5000];
        let p99 = sorted[9900];
        assert!(p99 / median > 10.0, "tail ratio {}", p99 / median);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = seeded_rng(9);
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn categorical_frequencies() {
        let mut rng = seeded_rng(10);
        let dist = Categorical::new(&[1.0, 3.0, 6.0]);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.1).abs() < 0.02);
        assert!((counts[1] as f64 / 30_000.0 - 0.3).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.6).abs() < 0.02);
    }

    #[test]
    fn categorical_zero_weight_bucket_never_sampled() {
        let mut rng = seeded_rng(11);
        let dist = Categorical::new(&[1.0, 0.0, 1.0]);
        for _ in 0..5_000 {
            assert_ne!(dist.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_is_skewed() {
        let w = zipf_weights(100, 1.2);
        assert!(w[0] > w[1] && w[1] > w[50]);
        let total: f64 = w.iter().sum();
        let head: f64 = w[..10].iter().sum();
        assert!(head / total > 0.5, "head share {}", head / total);
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(normal(&mut a, 0.0, 1.0), normal(&mut b, 0.0, 1.0));
        }
    }
}
