//! Node-level GPU monitoring simulator.
//!
//! SuperCloud samples `nvidia-smi` every 100 ms; Philly's Ganglia deployment
//! samples every minute (§II). The paper's features — mean / min / max SM
//! utilization, utilization *variance*, memory-bandwidth utilization, memory
//! used, board power — are reductions over those series. This module
//! generates a per-job time series from a latent behaviour pattern and
//! computes the same reductions, so derived features carry the same
//! dependence structure as real monitoring data (e.g. an idle GPU draws
//! near-idle power; a bursty inference job has zero *min* SM but nonzero
//! mean).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::rng::{clamp, normal};

/// Latent GPU usage pattern of a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GpuBehavior {
    /// GPU requested but never touched (the paper's `SM Util = 0%` jobs).
    Idle,
    /// Model resident in memory, compute only in short bursts (inference
    /// serving): near-zero mean SM, held memory, visible SM variance.
    BurstyInference {
        /// Fraction of samples inside a burst.
        duty: f64,
        /// SM utilization during a burst (percent).
        burst_level: f64,
        /// Memory held while serving (GB).
        mem_gb: f64,
    },
    /// Steady training at a target utilization.
    SteadyTraining {
        /// Mean SM utilization (percent).
        level: f64,
        /// Sample-to-sample jitter (percent).
        jitter: f64,
        /// Working-set memory (GB).
        mem_gb: f64,
    },
}

/// One sampled monitoring series for a job's GPU.
#[derive(Debug, Clone, Default)]
pub struct GpuSeries {
    /// SM (streaming multiprocessor) utilization per sample, percent.
    pub sm_util: Vec<f64>,
    /// Memory-bandwidth utilization per sample, percent.
    pub mem_bw_util: Vec<f64>,
    /// Memory used per sample, GB.
    pub mem_used_gb: Vec<f64>,
    /// Board power per sample, watts.
    pub power_w: Vec<f64>,
}

/// Reduction of a series into the paper's per-job features.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuStats {
    /// Mean SM utilization (percent).
    pub sm_mean: f64,
    /// Minimum SM utilization (percent).
    pub sm_min: f64,
    /// Maximum SM utilization (percent).
    pub sm_max: f64,
    /// Variance of SM utilization.
    pub sm_var: f64,
    /// Mean memory-bandwidth utilization (percent).
    pub mem_bw_mean: f64,
    /// Variance of memory-bandwidth utilization.
    pub mem_bw_var: f64,
    /// Mean memory used (GB).
    pub mem_used_mean_gb: f64,
    /// Mean board power (watts).
    pub power_mean_w: f64,
}

/// Hardware envelope used to translate utilization into power.
#[derive(Debug, Clone, Copy)]
pub struct GpuEnvelope {
    /// Power at 0% utilization (watts).
    pub idle_power_w: f64,
    /// Additional power at 100% utilization (watts).
    pub dynamic_power_w: f64,
    /// Total board memory (GB).
    pub memory_gb: f64,
}

/// NVIDIA V100-32GB-like envelope (SuperCloud nodes).
pub const V100: GpuEnvelope = GpuEnvelope {
    idle_power_w: 55.0,
    dynamic_power_w: 245.0,
    memory_gb: 32.0,
};

/// Caps the number of generated samples per job.
///
/// A week-long job at 100 ms would be ~6M samples; statistically the
/// reductions converge long before that, so the simulator spreads at most
/// this many samples across the job's runtime.
pub const MAX_SAMPLES: usize = 1_024;

/// Generates a monitoring series for one job.
///
/// `runtime_s` and `interval_s` determine the sample count (capped at
/// [`MAX_SAMPLES`]); at least one sample is always produced.
pub fn simulate_gpu(
    rng: &mut SmallRng,
    behavior: GpuBehavior,
    envelope: &GpuEnvelope,
    runtime_s: f64,
    interval_s: f64,
) -> GpuSeries {
    let raw = (runtime_s / interval_s.max(1e-9)).ceil() as usize;
    let n = raw.clamp(1, MAX_SAMPLES);
    let mut series = GpuSeries {
        sm_util: Vec::with_capacity(n),
        mem_bw_util: Vec::with_capacity(n),
        mem_used_gb: Vec::with_capacity(n),
        power_w: Vec::with_capacity(n),
    };
    for _ in 0..n {
        let (sm, mem_bw, mem_used) = match behavior {
            GpuBehavior::Idle => (0.0, 0.0, clamp(normal(rng, 0.3, 0.2), 0.0, 1.0)),
            GpuBehavior::BurstyInference {
                duty,
                burst_level,
                mem_gb,
            } => {
                if rng.gen::<f64>() < duty {
                    let sm = clamp(normal(rng, burst_level, 8.0), 1.0, 100.0);
                    (sm, sm * 0.5, mem_gb)
                } else {
                    (0.0, 0.0, mem_gb)
                }
            }
            GpuBehavior::SteadyTraining {
                level,
                jitter,
                mem_gb,
            } => {
                let sm = clamp(normal(rng, level, jitter), 0.0, 100.0);
                let bw = clamp(sm * 0.6 + normal(rng, 0.0, 4.0), 0.0, 100.0);
                let mem = clamp(mem_gb + normal(rng, 0.0, 0.3), 0.1, envelope.memory_gb);
                (sm, bw, mem)
            }
        };
        let power =
            envelope.idle_power_w + envelope.dynamic_power_w * (sm / 100.0) + normal(rng, 0.0, 3.0);
        series.sm_util.push(sm);
        series.mem_bw_util.push(mem_bw);
        series
            .mem_used_gb
            .push(clamp(mem_used, 0.0, envelope.memory_gb));
        series.power_w.push(power.max(0.0));
    }
    series
}

/// Mean of a slice (0 for empty).
fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of a slice (0 for empty).
fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

impl GpuSeries {
    /// Reduces the series into per-job features.
    pub fn stats(&self) -> GpuStats {
        GpuStats {
            sm_mean: mean(&self.sm_util),
            sm_min: self.sm_util.iter().copied().fold(f64::INFINITY, f64::min),
            sm_max: self
                .sm_util
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
            sm_var: variance(&self.sm_util),
            mem_bw_mean: mean(&self.mem_bw_util),
            mem_bw_var: variance(&self.mem_bw_util),
            mem_used_mean_gb: mean(&self.mem_used_gb),
            power_mean_w: mean(&self.power_w),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sm_util.len()
    }

    /// True when no samples were generated (never happens via
    /// [`simulate_gpu`]).
    pub fn is_empty(&self) -> bool {
        self.sm_util.is_empty()
    }
}

/// Lays out per-job series as one raw sample log: columns
/// `job_id, t_s, sm_util, mem_bw_util, mem_used_gb, power_w` — the shape a
/// node-level collector (e.g. 100 ms `nvidia-smi` polling) actually
/// writes, before any reduction.
pub fn series_to_raw_frame(jobs: &[(i64, &GpuSeries)], interval_s: f64) -> irma_data::Frame {
    let total: usize = jobs.iter().map(|(_, s)| s.len()).sum();
    let mut job_id = Vec::with_capacity(total);
    let mut t_s = Vec::with_capacity(total);
    let mut sm = Vec::with_capacity(total);
    let mut bw = Vec::with_capacity(total);
    let mut mem = Vec::with_capacity(total);
    let mut power = Vec::with_capacity(total);
    for (id, series) in jobs {
        for i in 0..series.len() {
            job_id.push(*id);
            t_s.push(i as f64 * interval_s);
            sm.push(series.sm_util[i]);
            bw.push(series.mem_bw_util[i]);
            mem.push(series.mem_used_gb[i]);
            power.push(series.power_w[i]);
        }
    }
    let mut frame = irma_data::Frame::new();
    frame
        .add_column("job_id", irma_data::Column::from_ints(job_id))
        .expect("fresh frame");
    frame
        .add_column("t_s", irma_data::Column::from_floats(t_s))
        .expect("fresh frame");
    frame
        .add_column("sm_util", irma_data::Column::from_floats(sm))
        .expect("fresh frame");
    frame
        .add_column("mem_bw_util", irma_data::Column::from_floats(bw))
        .expect("fresh frame");
    frame
        .add_column("mem_used_gb", irma_data::Column::from_floats(mem))
        .expect("fresh frame");
    frame
        .add_column("power_w", irma_data::Column::from_floats(power))
        .expect("fresh frame");
    frame
}

/// Reduces a raw sample log (as produced by [`series_to_raw_frame`]) into
/// the per-job feature frame the paper mines: mean/variance of SM and
/// memory-bandwidth utilization, mean memory used, mean power — the same
/// reductions [`GpuSeries::stats`] computes in memory, but run through
/// the generic grouped-reduction kernel so on-disk raw logs take the
/// exact same path.
pub fn reduce_raw_monitoring(raw: &irma_data::Frame) -> irma_data::Result<irma_data::Frame> {
    use irma_data::Reduction::{Max, Mean, Min, Var};
    let mut reduced = irma_data::reduce_by_key(
        raw,
        "job_id",
        &[
            ("sm_util", &[Mean, Min, Max, Var] as &[_]),
            ("mem_bw_util", &[Mean, Var]),
            ("mem_used_gb", &[Mean]),
            ("power_w", &[Mean]),
        ],
    )?;
    // Rename to the SuperCloud monitoring schema.
    for (from, to) in [
        ("mem_bw_util", "gmem_util"),
        ("mem_bw_util_var", "gmem_util_var"),
        ("mem_used_gb", "gmem_used_gb"),
        ("power_w", "gpu_power_w"),
    ] {
        let col = reduced.drop_column(from)?;
        reduced.add_column(to, col)?;
    }
    Ok(reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn idle_gpu_draws_idle_power() {
        let mut rng = seeded_rng(1);
        let s = simulate_gpu(&mut rng, GpuBehavior::Idle, &V100, 600.0, 0.1).stats();
        assert_eq!(s.sm_mean, 0.0);
        assert_eq!(s.sm_max, 0.0);
        assert_eq!(s.sm_var, 0.0);
        assert!((s.power_mean_w - V100.idle_power_w).abs() < 5.0);
        assert!(s.mem_used_mean_gb < 1.0);
    }

    #[test]
    fn training_gpu_hits_target_level() {
        let mut rng = seeded_rng(2);
        let s = simulate_gpu(
            &mut rng,
            GpuBehavior::SteadyTraining {
                level: 80.0,
                jitter: 5.0,
                mem_gb: 16.0,
            },
            &V100,
            3600.0,
            0.1,
        )
        .stats();
        assert!((s.sm_mean - 80.0).abs() < 3.0, "sm {}", s.sm_mean);
        assert!((s.mem_used_mean_gb - 16.0).abs() < 1.0);
        assert!(s.power_mean_w > 200.0);
        assert!(s.sm_var < 100.0);
    }

    #[test]
    fn bursty_inference_holds_memory_but_not_compute() {
        let mut rng = seeded_rng(3);
        let s = simulate_gpu(
            &mut rng,
            GpuBehavior::BurstyInference {
                duty: 0.05,
                burst_level: 60.0,
                mem_gb: 10.0,
            },
            &V100,
            3600.0,
            0.1,
        )
        .stats();
        assert!(s.sm_mean < 10.0, "mean {}", s.sm_mean);
        assert_eq!(s.sm_min, 0.0);
        assert!(s.sm_max > 30.0);
        assert!(s.sm_var > 10.0, "bursts must show up in variance");
        assert!((s.mem_used_mean_gb - 10.0).abs() < 0.5);
    }

    #[test]
    fn sample_count_capped_and_floored() {
        let mut rng = seeded_rng(4);
        let long = simulate_gpu(&mut rng, GpuBehavior::Idle, &V100, 1e7, 0.1);
        assert_eq!(long.len(), MAX_SAMPLES);
        let tiny = simulate_gpu(&mut rng, GpuBehavior::Idle, &V100, 0.01, 60.0);
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn raw_frame_reduction_matches_in_memory_stats() {
        let mut rng = seeded_rng(9);
        let behaviors = [
            GpuBehavior::Idle,
            GpuBehavior::SteadyTraining {
                level: 70.0,
                jitter: 6.0,
                mem_gb: 12.0,
            },
            GpuBehavior::BurstyInference {
                duty: 0.1,
                burst_level: 50.0,
                mem_gb: 8.0,
            },
        ];
        let series: Vec<GpuSeries> = behaviors
            .iter()
            .map(|&b| simulate_gpu(&mut rng, b, &V100, 60.0, 0.1))
            .collect();
        let jobs: Vec<(i64, &GpuSeries)> = series
            .iter()
            .enumerate()
            .map(|(i, s)| (i as i64, s))
            .collect();
        let raw = series_to_raw_frame(&jobs, 0.1);
        assert_eq!(raw.n_rows(), series.iter().map(GpuSeries::len).sum());
        let reduced = reduce_raw_monitoring(&raw).unwrap();
        assert_eq!(reduced.n_rows(), 3);
        for (i, s) in series.iter().enumerate() {
            let stats = s.stats();
            let get = |col: &str| reduced.get(i, col).unwrap().as_float().unwrap();
            assert!((get("sm_util") - stats.sm_mean).abs() < 1e-9, "job {i}");
            assert!((get("sm_util_min") - stats.sm_min).abs() < 1e-9);
            assert!((get("sm_util_max") - stats.sm_max).abs() < 1e-9);
            assert!((get("sm_util_var") - stats.sm_var).abs() < 1e-6);
            assert!((get("gmem_util") - stats.mem_bw_mean).abs() < 1e-9);
            assert!((get("gmem_util_var") - stats.mem_bw_var).abs() < 1e-6);
            assert!((get("gmem_used_gb") - stats.mem_used_mean_gb).abs() < 1e-9);
            assert!((get("gpu_power_w") - stats.power_mean_w).abs() < 1e-9);
        }
    }

    #[test]
    fn raw_frame_timestamps_step_by_interval() {
        let mut rng = seeded_rng(10);
        let s = simulate_gpu(&mut rng, GpuBehavior::Idle, &V100, 1.0, 0.1);
        let raw = series_to_raw_frame(&[(5, &s)], 0.1);
        assert_eq!(raw.get(0, "t_s").unwrap().as_float(), Some(0.0));
        assert!((raw.get(1, "t_s").unwrap().as_float().unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(raw.get(0, "job_id").unwrap().as_int(), Some(5));
    }

    #[test]
    fn variance_zero_for_constant_series() {
        let s = GpuSeries {
            sm_util: vec![5.0; 10],
            mem_bw_util: vec![1.0; 10],
            mem_used_gb: vec![2.0; 10],
            power_w: vec![60.0; 10],
        };
        let st = s.stats();
        assert_eq!(st.sm_var, 0.0);
        assert_eq!(st.sm_min, 5.0);
        assert_eq!(st.sm_max, 5.0);
    }
}
