//! # irma-synth — synthetic GPU-cluster trace substrate
//!
//! The paper analyses three production traces (Alibaba PAI, MIT SuperCloud,
//! Microsoft Philly). The raw traces are not redistributable inside this
//! repository, so this crate implements the closest synthetic equivalent:
//! an archetype-mixture job generator per trace, backed by real simulators
//! for the parts whose structure matters to the analysis —
//!
//! * [`monitor`]: a per-job GPU monitoring time-series simulator
//!   (SM / memory-bandwidth / memory / power) reduced to the paper's
//!   per-job features (mean, min, max, variance);
//! * [`sched`]: an event-driven FCFS queue simulator over per-type GPU
//!   pools (queue-wait features);
//! * [`users`]: Zipf-skewed user and job-group populations (frequent /
//!   new-user semantics).
//!
//! Each profile ([`pai`], [`supercloud`], [`philly`]) returns a
//! [`TraceBundle`] holding *two* frames — a scheduler-level log and a
//! node-level monitoring file — reproducing the paper's "features are
//! scattered across files" situation, plus per-job ground-truth archetype
//! labels used only by tests.
//!
//! Every generator is deterministic per [`TraceConfig::seed`].

#![warn(missing_docs)]

mod config;
pub mod monitor;
mod pai;
mod philly;
pub mod rng;
pub mod sched;
mod supercloud;
pub mod users;

pub use config::{
    read_merged_csv_dir, PaperScale, TraceBundle, TraceConfig, PAI_SCALE, PHILLY_SCALE,
    SUPERCLOUD_SCALE,
};
pub use pai::{pai, STD_CPU_REQUEST, STD_MEM_REQUEST_GB};
pub use philly::philly;
pub use supercloud::supercloud;

/// Generator signature shared by the three trace profiles.
pub type ProfileFn = fn(&TraceConfig) -> TraceBundle;

/// The three trace profiles by name, for sweep-style callers.
pub fn all_profiles() -> [(&'static str, ProfileFn); 3] {
    [
        ("pai", pai as ProfileFn),
        ("supercloud", supercloud as ProfileFn),
        ("philly", philly as ProfileFn),
    ]
}
