//! User and job-group populations with realistic activity skew.
//!
//! Production traces are dominated by a few heavy submitters (the paper
//! classifies the most active users covering 25% of submissions as
//! "frequent users" and the least active covering the last 25% as
//! "new users"). The generator mirrors that with a Zipf-weighted
//! population, and exposes *tiers* so archetypes can bias their sampling —
//! e.g. SuperCloud's "killed by new user" jobs draw from the tail.

use rand::rngs::SmallRng;

use crate::rng::{zipf_weights, Categorical};

/// Activity tier of a population member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Heavy submitters (head of the Zipf curve).
    Head,
    /// Mid-tail members.
    Middle,
    /// Light / occasional submitters.
    Tail,
}

/// A skewed population of named members (users or job groups).
#[derive(Debug, Clone)]
pub struct Population {
    prefix: &'static str,
    weights: Vec<f64>,
    all: Categorical,
    head: Categorical,
    middle: Categorical,
    tail: Categorical,
    head_end: usize,
    tail_start: usize,
}

impl Population {
    /// Builds a population of `n` members named `{prefix}{index:04}` with
    /// Zipf(`s`) activity. `head_share` / `tail_share` are the expected
    /// traffic fractions marking the head and tail tiers (the paper uses
    /// 25% / 25%).
    pub fn new(
        prefix: &'static str,
        n: usize,
        s: f64,
        head_share: f64,
        tail_share: f64,
    ) -> Population {
        assert!(n >= 3, "population too small");
        let weights = zipf_weights(n, s);
        let total: f64 = weights.iter().sum();

        // head_end = first index whose cumulative weight exceeds head_share.
        let mut cumulative = 0.0;
        let mut head_end = 0;
        for (i, &w) in weights.iter().enumerate() {
            cumulative += w;
            if cumulative / total >= head_share {
                head_end = i + 1;
                break;
            }
        }
        head_end = head_end.max(1);

        let mut tail_start = n;
        let mut back_cum = 0.0;
        for (i, &w) in weights.iter().enumerate().rev() {
            back_cum += w;
            if back_cum / total >= tail_share {
                tail_start = i;
                break;
            }
        }
        tail_start = tail_start.clamp(head_end, n - 1);

        let mask = |range: std::ops::Range<usize>| {
            let mut w = vec![0.0; n];
            w[range.clone()].copy_from_slice(&weights[range]);
            Categorical::new(&w)
        };
        Population {
            prefix,
            all: Categorical::new(&weights),
            head: mask(0..head_end),
            middle: mask(head_end..tail_start),
            tail: mask(tail_start..n),
            weights,
            head_end,
            tail_start,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Populations are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The display name of member `idx`.
    pub fn name(&self, idx: usize) -> String {
        format!("{}{:04}", self.prefix, idx)
    }

    /// Samples a member according to overall activity.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        self.all.sample(rng)
    }

    /// Samples a member restricted to one tier (still activity-weighted
    /// inside the tier).
    pub fn sample_tier(&self, rng: &mut SmallRng, tier: Tier) -> usize {
        match tier {
            Tier::Head => self.head.sample(rng),
            Tier::Middle => self.middle.sample(rng),
            Tier::Tail => self.tail.sample(rng),
        }
    }

    /// The tier a member belongs to.
    pub fn tier(&self, idx: usize) -> Tier {
        if idx < self.head_end {
            Tier::Head
        } else if idx < self.tail_start {
            Tier::Middle
        } else {
            Tier::Tail
        }
    }

    /// Index of the single heaviest member (used for PAI's "one user
    /// submitting a large number of failing jobs").
    pub fn heaviest(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn tiers_partition_population() {
        let p = Population::new("user", 200, 1.1, 0.25, 0.25);
        let mut seen = [0usize; 3];
        for i in 0..p.len() {
            match p.tier(i) {
                Tier::Head => seen[0] += 1,
                Tier::Middle => seen[1] += 1,
                Tier::Tail => seen[2] += 1,
            }
        }
        assert_eq!(seen.iter().sum::<usize>(), 200);
        assert!(seen[0] >= 1);
        assert!(seen[2] >= 1);
        // Head is small, tail is large (Zipf).
        assert!(seen[0] < seen[2]);
    }

    #[test]
    fn tier_sampling_respects_tier() {
        let p = Population::new("user", 100, 1.2, 0.25, 0.25);
        let mut rng = seeded_rng(3);
        for _ in 0..500 {
            assert_eq!(p.tier(p.sample_tier(&mut rng, Tier::Head)), Tier::Head);
            assert_eq!(p.tier(p.sample_tier(&mut rng, Tier::Tail)), Tier::Tail);
        }
    }

    #[test]
    fn head_gets_expected_traffic_share() {
        let p = Population::new("user", 300, 1.1, 0.25, 0.25);
        let mut rng = seeded_rng(4);
        let n = 50_000;
        let head_hits = (0..n)
            .filter(|_| p.tier(p.sample(&mut rng)) == Tier::Head)
            .count();
        let share = head_hits as f64 / n as f64;
        assert!((share - 0.25).abs() < 0.05, "head share {share}");
    }

    #[test]
    fn names_are_stable() {
        let p = Population::new("grp", 10, 1.0, 0.3, 0.3);
        assert_eq!(p.name(0), "grp0000");
        assert_eq!(p.name(7), "grp0007");
    }
}
