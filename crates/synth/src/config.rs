//! Generator configuration and the output bundle shared by all profiles.

use std::path::Path;

use irma_data::{inner_join, read_csv_path, write_csv_path, Frame};

/// Scale and determinism knobs for a trace profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of jobs to generate.
    pub n_jobs: usize,
    /// RNG seed; the same seed reproduces the same trace bit-for-bit.
    pub seed: u64,
    /// Cap on monitoring samples generated per job (the reductions
    /// converge quickly; see [`crate::monitor`]).
    pub max_monitor_samples: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            n_jobs: 50_000,
            seed: 0x1234_5678,
            max_monitor_samples: 256,
        }
    }
}

impl TraceConfig {
    /// Config with a given job count (default seed).
    pub fn with_jobs(n_jobs: usize) -> TraceConfig {
        TraceConfig {
            n_jobs,
            ..TraceConfig::default()
        }
    }

    /// Same config with another seed.
    pub fn seeded(mut self, seed: u64) -> TraceConfig {
        self.seed = seed;
        self
    }
}

/// Paper-reported scale of each trace (Table I), for full-scale runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperScale {
    /// Jobs in the original trace.
    pub jobs: usize,
    /// Users in the original trace.
    pub users: usize,
    /// GPUs in the original cluster.
    pub gpus: usize,
}

/// Table I row for PAI.
pub const PAI_SCALE: PaperScale = PaperScale {
    jobs: 850_000,
    users: 1_242,
    gpus: 6_000,
};
/// Table I row for SuperCloud.
pub const SUPERCLOUD_SCALE: PaperScale = PaperScale {
    jobs: 98_000,
    users: 310,
    gpus: 450,
};
/// Table I row for Philly.
pub const PHILLY_SCALE: PaperScale = PaperScale {
    jobs: 100_000,
    users: 319,
    gpus: 2_500,
};

/// A generated trace: the two collection-level files plus ground truth.
///
/// `scheduler` and `monitoring` deliberately mirror the paper's "features
/// of a job are scattered across different files" situation; [`Self::merged`]
/// performs the paper's first preprocessing step (join on `job_id`).
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Trace name (`"pai"`, `"supercloud"`, `"philly"`).
    pub name: &'static str,
    /// Scheduler-level log: submission info, exit status, runtime.
    pub scheduler: Frame,
    /// Node-level monitoring reductions keyed by job id.
    pub monitoring: Frame,
    /// Ground-truth archetype label per job (generation order; used only by
    /// tests and diagnostics — the mining pipeline never sees it).
    pub truth: Vec<&'static str>,
}

impl TraceBundle {
    /// Joins the scheduler and monitoring files into the per-job analysis
    /// frame (inner join on `job_id`).
    pub fn merged(&self) -> Frame {
        inner_join(&self.scheduler, &self.monitoring, "job_id")
            .expect("generated frames always share job_id")
    }

    /// Number of jobs.
    pub fn n_jobs(&self) -> usize {
        self.scheduler.n_rows()
    }

    /// Fraction of jobs whose ground-truth archetype is `label`.
    pub fn truth_share(&self, label: &str) -> f64 {
        if self.truth.is_empty() {
            return 0.0;
        }
        self.truth.iter().filter(|&&t| t == label).count() as f64 / self.truth.len() as f64
    }

    /// Writes the two collection-level files as
    /// `<dir>/<name>_scheduler.csv` and `<dir>/<name>_monitoring.csv`,
    /// returning both paths. Ground-truth labels are deliberately *not*
    /// persisted — on-disk traces look exactly like production exports.
    pub fn write_csv_dir<P: AsRef<Path>>(
        &self,
        dir: P,
    ) -> irma_data::Result<(std::path::PathBuf, std::path::PathBuf)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(irma_data::DataError::from)?;
        let sched = dir.join(format!("{}_scheduler.csv", self.name));
        let mon = dir.join(format!("{}_monitoring.csv", self.name));
        write_csv_path(&self.scheduler, &sched)?;
        write_csv_path(&self.monitoring, &mon)?;
        Ok((sched, mon))
    }
}

/// Reads a trace previously written by [`TraceBundle::write_csv_dir`] and
/// re-joins it into the analysis frame.
pub fn read_merged_csv_dir<P: AsRef<Path>>(dir: P, name: &str) -> irma_data::Result<Frame> {
    let dir = dir.as_ref();
    let scheduler = read_csv_path(dir.join(format!("{name}_scheduler.csv")))?;
    let monitoring = read_csv_path(dir.join(format!("{name}_monitoring.csv")))?;
    inner_join(&scheduler, &monitoring, "job_id")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supercloud;

    #[test]
    fn bundle_csv_dir_round_trip() {
        let bundle = supercloud(&TraceConfig {
            n_jobs: 200,
            seed: 3,
            max_monitor_samples: 16,
        });
        let dir = std::env::temp_dir().join(format!("irma_bundle_{}", std::process::id()));
        let (sched, mon) = bundle.write_csv_dir(&dir).unwrap();
        assert!(sched.exists() && mon.exists());
        let merged = read_merged_csv_dir(&dir, "supercloud").unwrap();
        assert_eq!(merged.n_rows(), bundle.n_jobs());
        assert_eq!(merged.n_cols(), bundle.merged().n_cols());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truth_shares_sum_to_one() {
        let bundle = supercloud(&TraceConfig {
            n_jobs: 500,
            seed: 4,
            max_monitor_samples: 16,
        });
        let labels: std::collections::HashSet<&str> = bundle.truth.iter().copied().collect();
        let total: f64 = labels.iter().map(|l| bundle.truth_share(l)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
