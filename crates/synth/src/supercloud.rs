//! MIT SuperCloud trace profile (homogeneous V100 research cluster).
//!
//! SuperCloud is the trace the authors collect themselves: 100 ms
//! `nvidia-smi` sampling gives the richest GPU features — SM utilization
//! *and its variance*, memory-bandwidth utilization and variance, memory
//! used, and board power (§II). The profile embeds the paper's SuperCloud
//! findings: ~10% zero-SM jobs (Fig. 4), idle GPUs drawing idle power with
//! quiet memory (Table III C1/C2/A1), bursty inference that holds memory
//! without computing (Table III A2's contrast with A1), new users
//! associated with idle GPUs (C3) and with killing their jobs (Table VIII
//! CIR1), and a slice of *long-running* failures from node faults /
//! timeouts (Table VI A2).

use rand::rngs::SmallRng;
use rand::Rng;

use irma_data::{Column, Frame};

use crate::config::{TraceBundle, TraceConfig};
use crate::monitor::{simulate_gpu, GpuBehavior, GpuStats, V100};
use crate::rng::{clamp, lognormal, seeded_rng, Categorical};
use crate::users::{Population, Tier};

/// `nvidia-smi` sampling interval on SuperCloud (100 ms).
const MONITOR_INTERVAL_S: f64 = 0.1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Archetype {
    /// Requested a GPU, never used it (often a newer user exploring).
    IdleExplorer,
    /// Inference serving: memory held, compute in rare bursts.
    InferenceHolder,
    /// Fails early with nothing on the GPU.
    EarlyFail,
    /// Runs for many hours, then dies (node failure / time limit).
    LongFail,
    /// New user who manually kills the job.
    KilledNewbie,
    /// Healthy training workload.
    Training,
    /// Everything else.
    Misc,
}

const ARCHETYPES: [(Archetype, f64, &str); 7] = [
    (Archetype::IdleExplorer, 0.05, "idle_explorer"),
    (Archetype::InferenceHolder, 0.03, "inference_holder"),
    (Archetype::EarlyFail, 0.05, "early_fail"),
    (Archetype::LongFail, 0.05, "long_fail"),
    (Archetype::KilledNewbie, 0.10, "killed_newbie"),
    (Archetype::Training, 0.65, "training"),
    (Archetype::Misc, 0.07, "misc"),
];

struct JobDraft {
    user: String,
    gpus: i64,
    cpus: i64,
    status: &'static str,
    runtime_s: f64,
    stats: GpuStats,
    cpu_util: f64,
    mem_used_gb: f64,
    truth: &'static str,
}

fn status(rng: &mut SmallRng, p_completed: f64, p_failed: f64) -> &'static str {
    let u = rng.gen::<f64>();
    if u < p_completed {
        "completed"
    } else if u < p_completed + p_failed {
        "failed"
    } else {
        "killed"
    }
}

fn sim(
    rng: &mut SmallRng,
    behavior: GpuBehavior,
    runtime_s: f64,
    config: &TraceConfig,
) -> GpuStats {
    let interval = (runtime_s / config.max_monitor_samples as f64).max(MONITOR_INTERVAL_S);
    simulate_gpu(rng, behavior, &V100, runtime_s, interval).stats()
}

fn draft_job(
    rng: &mut SmallRng,
    archetype: Archetype,
    truth: &'static str,
    users: &Population,
    config: &TraceConfig,
) -> JobDraft {
    let single_gpu = |rng: &mut SmallRng| if rng.gen::<f64>() < 0.97 { 1 } else { 2 };
    match archetype {
        Archetype::IdleExplorer => {
            let runtime = clamp(lognormal(rng, 5.5, 1.1), 10.0, 28_800.0);
            let tier = if rng.gen::<f64>() < 0.55 {
                Tier::Tail
            } else {
                Tier::Middle
            };
            JobDraft {
                user: users.name(users.sample_tier(rng, tier)),
                gpus: single_gpu(rng),
                cpus: rng.gen_range(1..9),
                status: status(rng, 0.6, 0.1),
                runtime_s: runtime,
                stats: sim(rng, GpuBehavior::Idle, runtime, config),
                cpu_util: clamp(lognormal(rng, 1.0, 0.7), 0.1, 12.0),
                mem_used_gb: clamp(lognormal(rng, 0.3, 0.6), 0.2, 6.0),
                truth,
            }
        }
        Archetype::InferenceHolder => {
            let runtime = clamp(lognormal(rng, 10.0, 0.8), 3_600.0, 1_209_600.0);
            let behavior = GpuBehavior::BurstyInference {
                duty: rng.gen_range(0.008..0.02),
                burst_level: rng.gen_range(35.0..65.0),
                mem_gb: rng.gen_range(8.0..24.0),
            };
            JobDraft {
                user: users.name(users.sample(rng)),
                gpus: 1,
                cpus: rng.gen_range(2..17),
                status: status(rng, 0.8, 0.05),
                runtime_s: runtime,
                stats: sim(rng, behavior, runtime, config),
                cpu_util: clamp(lognormal(rng, 1.5, 0.6), 0.3, 20.0),
                mem_used_gb: clamp(lognormal(rng, 1.5, 0.5), 1.0, 32.0),
                truth,
            }
        }
        Archetype::EarlyFail => {
            let runtime = clamp(lognormal(rng, 5.0, 1.0), 5.0, 7_200.0);
            JobDraft {
                user: users.name(users.sample(rng)),
                gpus: single_gpu(rng),
                cpus: rng.gen_range(1..9),
                status: status(rng, 0.05, 0.9),
                runtime_s: runtime,
                stats: sim(rng, GpuBehavior::Idle, runtime, config),
                cpu_util: clamp(lognormal(rng, 0.8, 0.6), 0.1, 8.0),
                mem_used_gb: clamp(lognormal(rng, 0.0, 0.6), 0.1, 4.0),
                truth,
            }
        }
        Archetype::LongFail => {
            // 8 hours .. 3 weeks: the paper attributes these to node
            // failures or exceeded time limits, not the workload itself.
            let runtime = clamp(lognormal(rng, 11.3, 0.7), 28_800.0, 1_814_400.0);
            let behavior = GpuBehavior::SteadyTraining {
                level: rng.gen_range(40.0..90.0),
                jitter: 8.0,
                mem_gb: rng.gen_range(8.0..28.0),
            };
            JobDraft {
                user: users.name(users.sample(rng)),
                gpus: single_gpu(rng),
                cpus: rng.gen_range(4..33),
                status: status(rng, 0.05, 0.9),
                runtime_s: runtime,
                stats: sim(rng, behavior, runtime, config),
                cpu_util: clamp(lognormal(rng, 3.0, 0.6), 5.0, 90.0),
                mem_used_gb: clamp(lognormal(rng, 2.5, 0.6), 4.0, 128.0),
                truth,
            }
        }
        Archetype::KilledNewbie => {
            let runtime = clamp(lognormal(rng, 6.5, 1.2), 20.0, 86_400.0);
            let idle = rng.gen::<f64>() < 0.12;
            let behavior = if idle {
                GpuBehavior::Idle
            } else {
                GpuBehavior::SteadyTraining {
                    level: rng.gen_range(10.0..60.0),
                    jitter: 10.0,
                    mem_gb: rng.gen_range(1.0..16.0),
                }
            };
            JobDraft {
                user: users.name(users.sample_tier(rng, Tier::Tail)),
                gpus: single_gpu(rng),
                cpus: rng.gen_range(1..17),
                status: status(rng, 0.15, 0.1),
                runtime_s: runtime,
                stats: sim(rng, behavior, runtime, config),
                cpu_util: clamp(lognormal(rng, 2.0, 0.9), 0.3, 70.0),
                mem_used_gb: clamp(lognormal(rng, 1.0, 0.8), 0.3, 48.0),
                truth,
            }
        }
        Archetype::Training => {
            let runtime = clamp(lognormal(rng, 8.8, 1.3), 120.0, 1_209_600.0);
            let behavior = GpuBehavior::SteadyTraining {
                level: rng.gen_range(30.0..95.0),
                jitter: rng.gen_range(4.0..12.0),
                mem_gb: rng.gen_range(2.0..30.0),
            };
            JobDraft {
                user: users.name(users.sample(rng)),
                gpus: single_gpu(rng),
                cpus: rng.gen_range(4..41),
                status: status(rng, 0.84, 0.05),
                runtime_s: runtime,
                stats: sim(rng, behavior, runtime, config),
                cpu_util: clamp(lognormal(rng, 3.2, 0.7), 2.0, 98.0),
                mem_used_gb: clamp(lognormal(rng, 2.3, 0.8), 1.0, 160.0),
                truth,
            }
        }
        Archetype::Misc => {
            let runtime = clamp(lognormal(rng, 7.0, 1.6), 10.0, 604_800.0);
            let behavior = if rng.gen::<f64>() < 0.05 {
                GpuBehavior::Idle
            } else {
                GpuBehavior::SteadyTraining {
                    level: rng.gen_range(5.0..75.0),
                    jitter: 10.0,
                    mem_gb: rng.gen_range(0.5..20.0),
                }
            };
            JobDraft {
                user: users.name(users.sample(rng)),
                gpus: single_gpu(rng),
                cpus: rng.gen_range(1..33),
                status: status(rng, 0.75, 0.1),
                runtime_s: runtime,
                stats: sim(rng, behavior, runtime, config),
                cpu_util: clamp(lognormal(rng, 2.5, 1.0), 0.2, 95.0),
                mem_used_gb: clamp(lognormal(rng, 1.5, 1.0), 0.2, 100.0),
                truth,
            }
        }
    }
}

/// Generates the SuperCloud trace bundle.
pub fn supercloud(config: &TraceConfig) -> TraceBundle {
    let mut rng = seeded_rng(config.seed ^ 0x5c10);
    let n_users = (config.n_jobs / 316).max(30);
    let users = Population::new("user", n_users, 1.05, 0.25, 0.25);
    let weights: Vec<f64> = ARCHETYPES.iter().map(|&(_, w, _)| w).collect();
    let mixture = Categorical::new(&weights);

    let mut drafts: Vec<JobDraft> = Vec::with_capacity(config.n_jobs);
    for _ in 0..config.n_jobs {
        let (archetype, _, truth) = ARCHETYPES[mixture.sample(&mut rng)];
        drafts.push(draft_job(&mut rng, archetype, truth, &users, config));
    }

    let n = drafts.len() as i64;
    let mut scheduler = Frame::new();
    scheduler
        .add_column("job_id", Column::from_ints(0..n))
        .expect("fresh frame");
    scheduler
        .add_column(
            "user",
            Column::from_strs(drafts.iter().map(|d| d.user.as_str())),
        )
        .expect("fresh frame");
    scheduler
        .add_column("gpus", Column::from_ints(drafts.iter().map(|d| d.gpus)))
        .expect("fresh frame");
    scheduler
        .add_column("cpus", Column::from_ints(drafts.iter().map(|d| d.cpus)))
        .expect("fresh frame");
    scheduler
        .add_column("status", Column::from_strs(drafts.iter().map(|d| d.status)))
        .expect("fresh frame");
    scheduler
        .add_column(
            "runtime_s",
            Column::from_floats(drafts.iter().map(|d| d.runtime_s)),
        )
        .expect("fresh frame");

    let mut monitoring = Frame::new();
    monitoring
        .add_column("job_id", Column::from_ints(0..n))
        .expect("fresh frame");
    let float_col = |f: &dyn Fn(&JobDraft) -> f64| Column::from_floats(drafts.iter().map(f));
    monitoring
        .add_column("sm_util", float_col(&|d| d.stats.sm_mean))
        .expect("fresh frame");
    monitoring
        .add_column("sm_util_var", float_col(&|d| d.stats.sm_var))
        .expect("fresh frame");
    monitoring
        .add_column("gmem_util", float_col(&|d| d.stats.mem_bw_mean))
        .expect("fresh frame");
    monitoring
        .add_column("gmem_util_var", float_col(&|d| d.stats.mem_bw_var))
        .expect("fresh frame");
    monitoring
        .add_column("gmem_used_gb", float_col(&|d| d.stats.mem_used_mean_gb))
        .expect("fresh frame");
    monitoring
        .add_column("gpu_power_w", float_col(&|d| d.stats.power_mean_w))
        .expect("fresh frame");
    monitoring
        .add_column("cpu_util", float_col(&|d| d.cpu_util))
        .expect("fresh frame");
    monitoring
        .add_column("mem_used_gb", float_col(&|d| d.mem_used_gb))
        .expect("fresh frame");

    TraceBundle {
        name: "supercloud",
        scheduler,
        monitoring,
        truth: drafts.iter().map(|d| d.truth).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TraceBundle {
        supercloud(&TraceConfig {
            n_jobs: 6_000,
            seed: 21,
            max_monitor_samples: 64,
        })
    }

    #[test]
    fn shape_and_determinism() {
        let a = small();
        assert_eq!(a.n_jobs(), 6_000);
        let b = small();
        assert_eq!(a.scheduler, b.scheduler);
        assert_eq!(a.monitoring, b.monitoring);
    }

    #[test]
    fn zero_sm_share_matches_paper_band() {
        let t = small();
        let col = t.monitoring.column("sm_util").unwrap();
        let zero = (0..t.n_jobs())
            .filter(|&i| col.numeric(i).unwrap() < 1.0)
            .count() as f64
            / t.n_jobs() as f64;
        // Paper Fig. 4: ~10% for SuperCloud.
        assert!((0.05..=0.17).contains(&zero), "zero-SM share {zero}");
    }

    #[test]
    fn exit_status_shares() {
        let t = small();
        let col = t.scheduler.column("status").unwrap().as_strs().unwrap();
        let share = |s: &str| {
            (0..t.n_jobs()).filter(|&i| col.get(i) == Some(s)).count() as f64 / t.n_jobs() as f64
        };
        let failed = share("failed");
        let killed = share("killed");
        assert!((0.10..=0.22).contains(&failed), "failed {failed}");
        assert!((0.10..=0.25).contains(&killed), "killed {killed}");
        assert!(share("completed") > 0.55);
    }

    #[test]
    fn mostly_single_gpu() {
        let t = small();
        let col = t.scheduler.column("gpus").unwrap();
        let single = (0..t.n_jobs())
            .filter(|&i| col.get(i).as_int() == Some(1))
            .count() as f64
            / t.n_jobs() as f64;
        // Paper: 97% of SuperCloud jobs are single-GPU.
        assert!(single > 0.9, "single-GPU share {single}");
    }

    #[test]
    fn idle_gpus_draw_idle_power() {
        let t = small();
        let sm = t.monitoring.column("sm_util").unwrap();
        let power = t.monitoring.column("gpu_power_w").unwrap();
        let idle_power: Vec<f64> = (0..t.n_jobs())
            .filter(|&i| sm.numeric(i).unwrap() < 1.0)
            .map(|i| power.numeric(i).unwrap())
            .collect();
        assert!(!idle_power.is_empty());
        let mean = idle_power.iter().sum::<f64>() / idle_power.len() as f64;
        assert!((mean - V100.idle_power_w).abs() < 15.0, "idle power {mean}");
    }

    #[test]
    fn inference_holders_keep_memory_without_compute() {
        let t = small();
        let sm = t.monitoring.column("sm_util").unwrap();
        let mem = t.monitoring.column("gmem_used_gb").unwrap();
        let smvar = t.monitoring.column("sm_util_var").unwrap();
        let holders: Vec<usize> = t
            .truth
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == "inference_holder")
            .map(|(i, _)| i)
            .collect();
        assert!(!holders.is_empty());
        for &i in &holders {
            assert!(sm.numeric(i).unwrap() < 8.0);
            assert!(mem.numeric(i).unwrap() > 4.0);
        }
        let mean_sm =
            holders.iter().map(|&i| sm.numeric(i).unwrap()).sum::<f64>() / holders.len() as f64;
        assert!(mean_sm < 2.5, "mean holder SM {mean_sm}");
        // Bursts show in variance for a good share of holders even at the
        // test's coarse sample cap.
        let bursty = holders
            .iter()
            .filter(|&&i| smvar.numeric(i).unwrap() > 1.0)
            .count();
        assert!(
            bursty * 3 > holders.len(),
            "bursty {bursty}/{}",
            holders.len()
        );
    }

    #[test]
    fn long_fails_have_long_runtimes() {
        let t = small();
        let runtime = t.scheduler.column("runtime_s").unwrap();
        for (i, &label) in t.truth.iter().enumerate() {
            if label == "long_fail" {
                assert!(runtime.numeric(i).unwrap() >= 28_800.0);
            }
        }
    }
}
