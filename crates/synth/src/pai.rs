//! Alibaba PAI trace profile (MLaaS cloud, heterogeneous GPUs).
//!
//! Archetype-mixture generator calibrated to the marginals and
//! associations the paper reports for PAI: ~46% of jobs with 0% SM
//! utilization (Fig. 4), the highest failure rate of the three traces
//! (Fig. 5), a "standard" CPU/memory request spike at the median
//! (§IV-B), a dominant heavy user whose frequent-group jobs mostly fail
//! (Table V C3), distributed jobs that fail before touching GPU memory
//! (Table V C4/C5), RecSys inference on T4 (Table VIII PAI3), NLP jobs
//! with high SM and near-zero CPU (PAI4), and opposite queue waits for T4
//! vs non-T4 (PAI1/PAI2) produced by an actual FCFS scheduler simulation.

use rand::rngs::SmallRng;
use rand::Rng;

use irma_data::{Column, Frame};

use crate::config::{TraceBundle, TraceConfig};
use crate::monitor::{simulate_gpu, GpuBehavior, GpuEnvelope};
use crate::rng::{clamp, lognormal, seeded_rng, Categorical};
use crate::sched::{simulate_queue, GpuPool, SchedRequest};
use crate::users::{Population, Tier};

/// The "standard" CPU request (the paper observes ~50% of PAI jobs request
/// exactly 600 centi-cores, which it bins as `CPU Request = Std`).
pub const STD_CPU_REQUEST: i64 = 600;
/// The "standard" memory request in GB (`Mem Request = Std`).
pub const STD_MEM_REQUEST_GB: f64 = 32.0;

/// Latent job classes for the PAI mixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Archetype {
    /// Low-customization exploratory job: template framework, standard
    /// requests, never touches the GPU.
    DebugTemplate,
    /// Frequent-group job from heavy users that fails before loading
    /// anything onto the GPU (library import errors).
    FailedGroup,
    /// Distributed job requesting 25–100 GPUs that fails early.
    FailedDistributed,
    /// Recommender inference serving on T4 with multiple parallel tasks.
    RecSysInference,
    /// Language-model training: GPU-bound, nearly zero CPU.
    NlpTraining,
    /// Vision training: busy GPU and busy CPU (input pipeline).
    CvTraining,
    /// Background of miscellaneous healthy jobs.
    Misc,
}

const ARCHETYPES: [(Archetype, f64, &str); 7] = [
    (Archetype::DebugTemplate, 0.22, "debug_template"),
    (Archetype::FailedGroup, 0.13, "failed_group"),
    (Archetype::FailedDistributed, 0.07, "failed_distributed"),
    (Archetype::RecSysInference, 0.17, "recsys_inference"),
    (Archetype::NlpTraining, 0.09, "nlp_training"),
    (Archetype::CvTraining, 0.13, "cv_training"),
    (Archetype::Misc, 0.19, "misc"),
];

/// GPU inventory classes a PAI job can be placed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolKind {
    T4 = 0,
    NonT4 = 1,
    MiscLowEnd = 2,
}

/// A mid-range envelope; PAI's exact devices vary, only relative shapes
/// matter for the mined features.
const PAI_GPU: GpuEnvelope = GpuEnvelope {
    idle_power_w: 35.0,
    dynamic_power_w: 215.0,
    memory_gb: 16.0,
};

/// Monitoring granularity for PAI (minutes-level collector).
const MONITOR_INTERVAL_S: f64 = 60.0;

struct JobDraft {
    user: String,
    group: String,
    framework: &'static str,
    gpu_request: i64,
    cpu_request: i64,
    mem_request_gb: f64,
    gpu_type: &'static str,
    num_inst: i64,
    model: Option<&'static str>,
    status: &'static str,
    runtime_s: f64,
    sm_util: f64,
    gmem_used_gb: f64,
    cpu_util: f64,
    mem_used_gb: f64,
    pool: PoolKind,
    truth: &'static str,
}

fn pick<'a>(rng: &mut SmallRng, options: &[(&'a str, f64)]) -> &'a str {
    let weights: Vec<f64> = options.iter().map(|&(_, w)| w).collect();
    options[Categorical::new(&weights).sample(rng)].0
}

fn failed(rng: &mut SmallRng, p: f64) -> &'static str {
    if rng.gen::<f64>() < p {
        "Failed"
    } else {
        "Terminated"
    }
}

const CV_MODELS: [&str; 3] = ["resnet", "vgg", "inception"];
const NLP_MODELS: [&str; 3] = ["bert", "nmt", "xlnet"];
const RECSYS_MODELS: [&str; 3] = ["din", "dien", "deepfm"];

fn choice<'a>(rng: &mut SmallRng, xs: &[&'a str]) -> &'a str {
    xs[rng.gen_range(0..xs.len())]
}

/// Non-standard CPU request: spread around the spike, in units of 50.
fn varied_cpu(rng: &mut SmallRng) -> i64 {
    (rng.gen_range(2..40) * 50) as i64
}

/// Non-standard memory request in GB.
fn varied_mem(rng: &mut SmallRng) -> f64 {
    [8.0, 16.0, 64.0, 128.0][rng.gen_range(0..4)]
}

fn draft_job(
    rng: &mut SmallRng,
    archetype: Archetype,
    truth: &'static str,
    users: &Population,
    groups: &Population,
    config: &TraceConfig,
) -> JobDraft {
    match archetype {
        Archetype::DebugTemplate => {
            let runtime = clamp(lognormal(rng, 5.2, 1.0), 10.0, 7200.0); // ~3 min
            let stats = sim(rng, GpuBehavior::Idle, runtime, config);
            JobDraft {
                user: users.name(users.sample_tier(rng, Tier::Head)),
                group: groups.name(groups.sample_tier(rng, Tier::Middle)),
                framework: pick(rng, &[("tensorflow", 0.95), ("pytorch", 0.05)]),
                gpu_request: if rng.gen::<f64>() < 0.7 { 1 } else { 2 },
                cpu_request: if rng.gen::<f64>() < 0.9 {
                    STD_CPU_REQUEST
                } else {
                    varied_cpu(rng)
                },
                mem_request_gb: if rng.gen::<f64>() < 0.9 {
                    STD_MEM_REQUEST_GB
                } else {
                    varied_mem(rng)
                },
                gpu_type: pick(rng, &[("None", 0.92), ("T4", 0.04), ("V100", 0.04)]),
                num_inst: 1,
                model: None,
                status: failed(rng, 0.22),
                runtime_s: runtime,
                sm_util: stats.0,
                gmem_used_gb: stats.1,
                cpu_util: clamp(lognormal(rng, 1.2, 0.7), 0.2, 15.0),
                mem_used_gb: clamp(lognormal(rng, -0.5, 0.6), 0.05, 2.0),
                pool: PoolKind::MiscLowEnd,
                truth,
            }
        }
        Archetype::FailedGroup => {
            let runtime = clamp(lognormal(rng, 4.8, 0.9), 5.0, 3600.0);
            let user_idx = if rng.gen::<f64>() < 0.5 {
                users.heaviest()
            } else {
                users.sample_tier(rng, Tier::Head)
            };
            JobDraft {
                user: users.name(user_idx),
                group: groups.name(groups.sample_tier(rng, Tier::Head)),
                framework: pick(rng, &[("tensorflow", 0.9), ("pytorch", 0.1)]),
                gpu_request: [1, 2, 2, 4][rng.gen_range(0..4)],
                cpu_request: (rng.gen_range(1..5) * 50) as i64, // 50..200: low
                mem_request_gb: if rng.gen::<f64>() < 0.85 {
                    STD_MEM_REQUEST_GB
                } else {
                    varied_mem(rng)
                },
                gpu_type: pick(rng, &[("None", 0.95), ("T4", 0.05)]),
                num_inst: 1,
                model: None,
                status: failed(rng, 0.95),
                runtime_s: runtime,
                sm_util: 0.0,
                // Fails before anything is loaded onto the GPU.
                gmem_used_gb: if rng.gen::<f64>() < 0.92 {
                    0.0
                } else {
                    clamp(lognormal(rng, 0.0, 0.5), 0.1, 4.0)
                },
                cpu_util: clamp(lognormal(rng, 1.0, 0.6), 0.2, 10.0),
                mem_used_gb: clamp(lognormal(rng, -0.8, 0.5), 0.05, 1.0),
                pool: PoolKind::MiscLowEnd,
                truth,
            }
        }
        Archetype::FailedDistributed => {
            let runtime = clamp(lognormal(rng, 5.8, 1.0), 20.0, 14_400.0);
            let idle = rng.gen::<f64>() < 0.8;
            let behavior = if idle {
                GpuBehavior::Idle
            } else {
                GpuBehavior::SteadyTraining {
                    level: 20.0,
                    jitter: 6.0,
                    mem_gb: 4.0,
                }
            };
            let stats = sim(rng, behavior, runtime, config);
            JobDraft {
                user: users.name(users.sample(rng)),
                group: groups.name(groups.sample(rng)),
                framework: pick(rng, &[("tensorflow", 0.6), ("pytorch", 0.4)]),
                gpu_request: rng.gen_range(25..100),
                cpu_request: if rng.gen::<f64>() < 0.4 {
                    STD_CPU_REQUEST
                } else {
                    varied_cpu(rng)
                },
                mem_request_gb: varied_mem(rng),
                gpu_type: pick(rng, &[("V100", 0.5), ("None", 0.3), ("P100", 0.2)]),
                num_inst: rng.gen_range(1..4),
                model: None,
                status: failed(rng, 0.85),
                runtime_s: runtime,
                sm_util: stats.0,
                gmem_used_gb: if idle && rng.gen::<f64>() < 0.9 {
                    0.0
                } else {
                    stats.1
                },
                cpu_util: clamp(lognormal(rng, 1.5, 0.8), 0.3, 25.0),
                mem_used_gb: clamp(lognormal(rng, 0.5, 0.8), 0.1, 8.0),
                pool: PoolKind::NonT4,
                truth,
            }
        }
        Archetype::RecSysInference => {
            let runtime = clamp(lognormal(rng, 7.5, 1.0), 120.0, 86_400.0);
            let behavior = GpuBehavior::BurstyInference {
                duty: rng.gen_range(0.2..0.45),
                burst_level: rng.gen_range(40.0..70.0),
                mem_gb: rng.gen_range(4.0..10.0),
            };
            let stats = sim(rng, behavior, runtime, config);
            let t4 = rng.gen::<f64>() < 0.88;
            JobDraft {
                user: users.name(users.sample(rng)),
                group: groups.name(groups.sample(rng)),
                framework: pick(rng, &[("tensorflow", 0.5), ("pytorch", 0.3), ("xdl", 0.2)]),
                gpu_request: rng.gen_range(2..9),
                cpu_request: if rng.gen::<f64>() < 0.25 {
                    STD_CPU_REQUEST
                } else {
                    varied_cpu(rng)
                },
                mem_request_gb: if rng.gen::<f64>() < 0.4 {
                    STD_MEM_REQUEST_GB
                } else {
                    varied_mem(rng)
                },
                gpu_type: if t4 { "T4" } else { "None" },
                num_inst: rng.gen_range(4..17),
                model: Some(choice(rng, &RECSYS_MODELS)),
                status: failed(rng, 0.08),
                runtime_s: runtime,
                sm_util: stats.0,
                gmem_used_gb: stats.1,
                cpu_util: clamp(lognormal(rng, 3.4, 0.4), 10.0, 70.0),
                mem_used_gb: clamp(lognormal(rng, 2.0, 0.5), 2.0, 32.0),
                pool: if t4 {
                    PoolKind::T4
                } else {
                    PoolKind::MiscLowEnd
                },
                truth,
            }
        }
        Archetype::NlpTraining => {
            let runtime = clamp(lognormal(rng, 9.3, 0.9), 600.0, 604_800.0);
            let behavior = GpuBehavior::SteadyTraining {
                level: rng.gen_range(78.0..96.0),
                jitter: 5.0,
                mem_gb: rng.gen_range(10.0..15.5),
            };
            let stats = sim(rng, behavior, runtime, config);
            JobDraft {
                user: users.name(users.sample(rng)),
                group: groups.name(groups.sample(rng)),
                framework: pick(rng, &[("tensorflow", 0.55), ("pytorch", 0.45)]),
                gpu_request: rng.gen_range(8..33),
                cpu_request: varied_cpu(rng),
                mem_request_gb: varied_mem(rng),
                gpu_type: pick(rng, &[("V100", 0.7), ("P100", 0.3)]),
                num_inst: rng.gen_range(1..3),
                model: Some(choice(rng, &NLP_MODELS)),
                status: failed(rng, 0.10),
                runtime_s: runtime,
                sm_util: stats.0,
                gmem_used_gb: stats.1,
                // GPU-bound: CPU nearly idle (the paper's `CPU Util = Bin0`;
                // below the encoder's 1% zero-bin threshold).
                cpu_util: rng.gen_range(0.05..0.9),
                mem_used_gb: clamp(lognormal(rng, 1.5, 0.5), 1.0, 16.0),
                pool: PoolKind::NonT4,
                truth,
            }
        }
        Archetype::CvTraining => {
            let runtime = clamp(lognormal(rng, 8.6, 1.0), 300.0, 259_200.0);
            let behavior = GpuBehavior::SteadyTraining {
                level: rng.gen_range(45.0..80.0),
                jitter: 10.0,
                mem_gb: rng.gen_range(6.0..14.0),
            };
            let stats = sim(rng, behavior, runtime, config);
            let gpu_type = pick(
                rng,
                &[("V100", 0.4), ("P100", 0.3), ("T4", 0.1), ("None", 0.2)],
            );
            JobDraft {
                user: users.name(users.sample(rng)),
                group: groups.name(groups.sample(rng)),
                framework: pick(rng, &[("tensorflow", 0.5), ("pytorch", 0.5)]),
                gpu_request: rng.gen_range(2..17),
                cpu_request: varied_cpu(rng),
                mem_request_gb: if rng.gen::<f64>() < 0.3 {
                    STD_MEM_REQUEST_GB
                } else {
                    varied_mem(rng)
                },
                gpu_type,
                num_inst: rng.gen_range(1..3),
                model: Some(choice(rng, &CV_MODELS)),
                status: failed(rng, 0.10),
                runtime_s: runtime,
                sm_util: stats.0,
                gmem_used_gb: stats.1,
                cpu_util: clamp(lognormal(rng, 3.8, 0.4), 20.0, 95.0),
                mem_used_gb: clamp(lognormal(rng, 2.2, 0.5), 2.0, 48.0),
                pool: match gpu_type {
                    "T4" => PoolKind::T4,
                    "None" => PoolKind::MiscLowEnd,
                    _ => PoolKind::NonT4,
                },
                truth,
            }
        }
        Archetype::Misc => {
            let runtime = clamp(lognormal(rng, 7.0, 1.6), 10.0, 259_200.0);
            let idle = rng.gen::<f64>() < 0.12;
            let behavior = if idle {
                GpuBehavior::Idle
            } else {
                GpuBehavior::SteadyTraining {
                    level: rng.gen_range(10.0..70.0),
                    jitter: 8.0,
                    mem_gb: rng.gen_range(1.0..12.0),
                }
            };
            let stats = sim(rng, behavior, runtime, config);
            let gpu_type = pick(
                rng,
                &[("None", 0.4), ("V100", 0.25), ("P100", 0.15), ("T4", 0.2)],
            );
            JobDraft {
                user: users.name(users.sample(rng)),
                group: groups.name(groups.sample(rng)),
                framework: pick(
                    rng,
                    &[("tensorflow", 0.45), ("pytorch", 0.4), ("graphlearn", 0.15)],
                ),
                gpu_request: rng.gen_range(2..13),
                cpu_request: if rng.gen::<f64>() < 0.2 {
                    STD_CPU_REQUEST
                } else {
                    varied_cpu(rng)
                },
                mem_request_gb: if rng.gen::<f64>() < 0.25 {
                    STD_MEM_REQUEST_GB
                } else {
                    varied_mem(rng)
                },
                gpu_type,
                num_inst: rng.gen_range(1..4),
                model: None,
                status: failed(rng, 0.12),
                runtime_s: runtime,
                sm_util: stats.0,
                gmem_used_gb: stats.1,
                cpu_util: clamp(lognormal(rng, 2.8, 1.0), 0.5, 95.0),
                mem_used_gb: clamp(lognormal(rng, 1.5, 1.0), 0.2, 64.0),
                pool: match gpu_type {
                    "T4" => PoolKind::T4,
                    "None" => PoolKind::MiscLowEnd,
                    _ => PoolKind::NonT4,
                },
                truth,
            }
        }
    }
}

/// Runs the monitor simulator and returns `(sm_mean, mem_used_mean)`.
fn sim(
    rng: &mut SmallRng,
    behavior: GpuBehavior,
    runtime_s: f64,
    config: &TraceConfig,
) -> (f64, f64) {
    let interval = (runtime_s / config.max_monitor_samples as f64).max(MONITOR_INTERVAL_S);
    let stats = simulate_gpu(rng, behavior, &PAI_GPU, runtime_s, interval).stats();
    (stats.sm_mean, stats.mem_used_mean_gb)
}

/// Generates the PAI trace bundle.
pub fn pai(config: &TraceConfig) -> TraceBundle {
    let mut rng = seeded_rng(config.seed ^ 0x8a1);
    let n_users = (config.n_jobs / 680).max(40);
    let users = Population::new("user", n_users, 1.1, 0.25, 0.25);
    let groups = Population::new("grp", (n_users * 2).max(60), 1.05, 0.25, 0.25);
    let weights: Vec<f64> = ARCHETYPES.iter().map(|&(_, w, _)| w).collect();
    let mixture = Categorical::new(&weights);

    let mut drafts: Vec<JobDraft> = Vec::with_capacity(config.n_jobs);
    for _ in 0..config.n_jobs {
        let (archetype, _, truth) = ARCHETYPES[mixture.sample(&mut rng)];
        drafts.push(draft_job(
            &mut rng, archetype, truth, &users, &groups, config,
        ));
    }

    // Queue simulation: diurnal arrivals over the trace window (daytime
    // submission bursts are what actually create queueing); capacities
    // sized so the T4 pool runs lightly loaded and the non-T4 pool nearly
    // saturated (the paper's PAI1/PAI2 contrast).
    let horizon_s = config.n_jobs as f64 * 30.0;
    let mut arrivals = crate::sched::diurnal_arrivals(&mut rng, config.n_jobs, horizon_s, 0.25);
    let mut demand = [0.0f64; 3];
    for (d, a) in drafts.iter().zip(&arrivals) {
        let _ = a;
        demand[d.pool as usize] += d.runtime_s * d.gpu_request as f64;
    }
    let rho = [0.45, 0.97, 0.80]; // T4, non-T4, misc
    let pools: Vec<GpuPool> = ["T4", "NonT4", "Misc"]
        .iter()
        .enumerate()
        .map(|(i, name)| GpuPool {
            name: name.to_string(),
            capacity: ((demand[i] / (horizon_s * rho[i])).ceil() as u64).max(4),
        })
        .collect();
    let requests: Vec<SchedRequest> = drafts
        .iter()
        .zip(&mut arrivals)
        .map(|(d, a)| SchedRequest {
            pool: d.pool as usize,
            arrival_s: *a,
            service_s: d.runtime_s,
            gpus: d.gpu_request as u64,
        })
        .collect();
    let waits = simulate_queue(&pools, &requests);

    // Assemble the two collection-level frames.
    let n = drafts.len();
    let mut scheduler = Frame::new();
    scheduler
        .add_column(
            "job_id",
            Column::from_ints((0..n as i64).collect::<Vec<_>>()),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "user",
            Column::from_strs(drafts.iter().map(|d| d.user.as_str())),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "group",
            Column::from_strs(drafts.iter().map(|d| d.group.as_str())),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "framework",
            Column::from_strs(drafts.iter().map(|d| d.framework)),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "gpu_request",
            Column::from_ints(drafts.iter().map(|d| d.gpu_request)),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "cpu_request",
            Column::from_ints(drafts.iter().map(|d| d.cpu_request)),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "mem_request_gb",
            Column::from_floats(drafts.iter().map(|d| d.mem_request_gb)),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "gpu_type_req",
            Column::from_strs(drafts.iter().map(|d| d.gpu_type)),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "num_inst",
            Column::from_ints(drafts.iter().map(|d| d.num_inst)),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "model",
            Column::from_opt_strs(drafts.iter().map(|d| d.model)),
        )
        .expect("fresh frame");
    scheduler
        .add_column("status", Column::from_strs(drafts.iter().map(|d| d.status)))
        .expect("fresh frame");
    scheduler
        .add_column(
            "runtime_s",
            Column::from_floats(drafts.iter().map(|d| d.runtime_s)),
        )
        .expect("fresh frame");
    scheduler
        .add_column("queue_s", Column::from_floats(waits))
        .expect("fresh frame");

    let mut monitoring = Frame::new();
    monitoring
        .add_column(
            "job_id",
            Column::from_ints((0..n as i64).collect::<Vec<_>>()),
        )
        .expect("fresh frame");
    monitoring
        .add_column(
            "sm_util",
            Column::from_floats(drafts.iter().map(|d| d.sm_util)),
        )
        .expect("fresh frame");
    monitoring
        .add_column(
            "gmem_used_gb",
            Column::from_floats(drafts.iter().map(|d| d.gmem_used_gb)),
        )
        .expect("fresh frame");
    monitoring
        .add_column(
            "cpu_util",
            Column::from_floats(drafts.iter().map(|d| d.cpu_util)),
        )
        .expect("fresh frame");
    monitoring
        .add_column(
            "mem_used_gb",
            Column::from_floats(drafts.iter().map(|d| d.mem_used_gb)),
        )
        .expect("fresh frame");

    TraceBundle {
        name: "pai",
        scheduler,
        monitoring,
        truth: drafts.iter().map(|d| d.truth).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TraceBundle {
        pai(&TraceConfig {
            n_jobs: 6_000,
            seed: 11,
            max_monitor_samples: 64,
        })
    }

    #[test]
    fn shape_and_determinism() {
        let a = small();
        assert_eq!(a.n_jobs(), 6_000);
        assert_eq!(a.monitoring.n_rows(), 6_000);
        assert_eq!(a.truth.len(), 6_000);
        let b = small();
        assert_eq!(a.scheduler, b.scheduler);
        assert_eq!(a.monitoring, b.monitoring);
    }

    #[test]
    fn zero_sm_share_matches_paper_band() {
        let t = small();
        let col = t.monitoring.column("sm_util").unwrap();
        let zero = (0..t.n_jobs())
            .filter(|&i| col.numeric(i).unwrap() < 1.0)
            .count() as f64
            / t.n_jobs() as f64;
        // Paper Fig. 4: ~46% of PAI jobs have ~0% SM utilization.
        assert!((0.36..=0.56).contains(&zero), "zero-SM share {zero}");
    }

    #[test]
    fn failure_share_matches_paper_band() {
        let t = small();
        let col = t.scheduler.column("status").unwrap().as_strs().unwrap();
        let failed = (0..t.n_jobs())
            .filter(|&i| col.get(i) == Some("Failed"))
            .count() as f64
            / t.n_jobs() as f64;
        // PAI has the highest failure rate in Fig. 5.
        assert!((0.2..=0.4).contains(&failed), "failed share {failed}");
    }

    #[test]
    fn std_cpu_request_spikes_near_half() {
        let t = small();
        let col = t.scheduler.column("cpu_request").unwrap();
        let std = (0..t.n_jobs())
            .filter(|&i| col.get(i).as_int() == Some(STD_CPU_REQUEST))
            .count() as f64
            / t.n_jobs() as f64;
        assert!((0.2..=0.5).contains(&std), "std share {std}");
    }

    #[test]
    fn t4_queues_shorter_than_non_t4() {
        let t = small();
        let gpu_type = t
            .scheduler
            .column("gpu_type_req")
            .unwrap()
            .as_strs()
            .unwrap();
        let queue = t.scheduler.column("queue_s").unwrap();
        let mean_wait = |ty: &str| {
            let idx: Vec<usize> = (0..t.n_jobs())
                .filter(|&i| gpu_type.get(i) == Some(ty))
                .collect();
            idx.iter().map(|&i| queue.numeric(i).unwrap()).sum::<f64>() / idx.len().max(1) as f64
        };
        let t4 = mean_wait("T4");
        let v100 = mean_wait("V100");
        assert!(
            t4 * 2.0 < v100,
            "expected T4 waits ({t4:.0}s) well below V100 waits ({v100:.0}s)"
        );
    }

    #[test]
    fn merged_frame_has_all_features() {
        let t = small();
        let merged = t.merged();
        assert_eq!(merged.n_rows(), t.n_jobs());
        for col in [
            "user",
            "group",
            "framework",
            "gpu_request",
            "cpu_request",
            "sm_util",
            "gmem_used_gb",
            "cpu_util",
        ] {
            assert!(merged.has_column(col), "missing {col}");
        }
    }

    #[test]
    fn failed_group_jobs_have_zero_gmem() {
        let t = small();
        let gmem = t.monitoring.column("gmem_used_gb").unwrap();
        let zero_gmem_among_failed_group: Vec<f64> = t
            .truth
            .iter()
            .enumerate()
            .filter(|(_, &label)| label == "failed_group")
            .map(|(i, _)| gmem.numeric(i).unwrap())
            .collect();
        assert!(!zero_gmem_among_failed_group.is_empty());
        let zero_share = zero_gmem_among_failed_group
            .iter()
            .filter(|&&v| v == 0.0)
            .count() as f64
            / zero_gmem_among_failed_group.len() as f64;
        assert!(zero_share > 0.8, "zero-gmem share {zero_share}");
    }
}
