//! Event-driven FCFS scheduler simulator.
//!
//! PAI's queue-wait rules (Table VIII: T4 jobs wait the least, non-T4 jobs
//! the most, despite a 1:3.5 T4:non-T4 inventory ratio) are contention
//! effects, so the generator produces queue waits with a real scheduler
//! substrate rather than sampling a wait distribution directly: per-pool
//! FCFS with head-of-line blocking over a fixed GPU inventory.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A homogeneous pool of interchangeable GPUs.
#[derive(Debug, Clone)]
pub struct GpuPool {
    /// Pool label (e.g. `"T4"`).
    pub name: String,
    /// Number of GPUs.
    pub capacity: u64,
}

/// One scheduling request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedRequest {
    /// Index into the pool list.
    pub pool: usize,
    /// Arrival (submission) time, seconds.
    pub arrival_s: f64,
    /// Service (execution) time, seconds.
    pub service_s: f64,
    /// GPUs required (gang-scheduled: all at once or wait).
    pub gpus: u64,
}

/// Completion event ordered by finish time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Completion {
    finish_s: f64,
    gpus: u64,
}

impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.finish_s
            .total_cmp(&other.finish_s)
            .then_with(|| self.gpus.cmp(&other.gpus))
    }
}

/// Per-pool FCFS state.
struct PoolState {
    available: u64,
    running: BinaryHeap<Reverse<Completion>>,
    waiting: VecDeque<usize>,
}

/// Simulates all requests and returns each request's queue wait (seconds),
/// in input order.
///
/// Requests whose `gpus` exceed the pool capacity are clamped to the
/// capacity (they would otherwise never start); callers sizing pools from
/// realistic demand will not hit this.
pub fn simulate_queue(pools: &[GpuPool], requests: &[SchedRequest]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| requests[a].arrival_s.total_cmp(&requests[b].arrival_s));

    let mut states: Vec<PoolState> = pools
        .iter()
        .map(|p| PoolState {
            available: p.capacity,
            running: BinaryHeap::new(),
            waiting: VecDeque::new(),
        })
        .collect();
    let mut waits = vec![0.0f64; requests.len()];
    let mut started = 0usize;
    let mut next_arrival = 0usize;

    // Starts every waiting job that fits, FCFS with head-of-line blocking.
    fn drain(
        state: &mut PoolState,
        now: f64,
        requests: &[SchedRequest],
        capacity: u64,
        waits: &mut [f64],
        started: &mut usize,
    ) {
        while let Some(&idx) = state.waiting.front() {
            let need = requests[idx].gpus.min(capacity).max(1);
            if need > state.available {
                break;
            }
            state.waiting.pop_front();
            state.available -= need;
            state.running.push(Reverse(Completion {
                finish_s: now + requests[idx].service_s,
                gpus: need,
            }));
            waits[idx] = now - requests[idx].arrival_s;
            *started += 1;
        }
    }

    while started < requests.len() {
        // Next event: earliest of (next arrival, earliest completion in any
        // pool that still has waiting work).
        let arrival_time = order.get(next_arrival).map(|&i| requests[i].arrival_s);
        let completion = states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.waiting.is_empty())
            .filter_map(|(p, s)| s.running.peek().map(|Reverse(c)| (c.finish_s, p)))
            .min_by(|a, b| a.0.total_cmp(&b.0));

        match (arrival_time, completion) {
            (Some(at), Some((ct, pool))) if ct <= at => {
                let Reverse(c) = states[pool].running.pop().expect("peeked");
                states[pool].available += c.gpus;
                drain(
                    &mut states[pool],
                    ct,
                    requests,
                    pools[pool].capacity,
                    &mut waits,
                    &mut started,
                );
            }
            (Some(at), _) => {
                let idx = order[next_arrival];
                next_arrival += 1;
                let pool = requests[idx].pool;
                // Free everything that finished before this arrival.
                while let Some(&Reverse(c)) = states[pool].running.peek() {
                    if c.finish_s <= at {
                        states[pool].running.pop();
                        states[pool].available += c.gpus;
                    } else {
                        break;
                    }
                }
                states[pool].waiting.push_back(idx);
                drain(
                    &mut states[pool],
                    at,
                    requests,
                    pools[pool].capacity,
                    &mut waits,
                    &mut started,
                );
            }
            (None, Some((ct, pool))) => {
                let Reverse(c) = states[pool].running.pop().expect("peeked");
                states[pool].available += c.gpus;
                drain(
                    &mut states[pool],
                    ct,
                    requests,
                    pools[pool].capacity,
                    &mut waits,
                    &mut started,
                );
            }
            (None, None) => unreachable!("jobs remain but no events pending"),
        }
    }
    waits
}

/// Generates `n` arrival times over `[0, horizon_s)` with a diurnal
/// submission pattern: a sinusoidal day/night rate (period 24 h, peak at
/// mid-day, `night_floor` of the peak rate at night), sampled by thinning
/// a homogeneous Poisson process. Production clusters see exactly this
/// shape; bursty daytime arrivals are what create queueing even at
/// moderate average utilization.
pub fn diurnal_arrivals(
    rng: &mut rand::rngs::SmallRng,
    n: usize,
    horizon_s: f64,
    night_floor: f64,
) -> Vec<f64> {
    use rand::Rng;
    assert!((0.0..=1.0).contains(&night_floor));
    const DAY_S: f64 = 86_400.0;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let t = rng.gen_range(0.0..horizon_s);
        // Rate in [night_floor, 1], peak at noon (t mod day = day/2).
        let phase = (t % DAY_S) / DAY_S * std::f64::consts::TAU;
        let rate = night_floor + (1.0 - night_floor) * 0.5 * (1.0 - phase.cos());
        if rng.gen::<f64>() < rate {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn pool(capacity: u64) -> Vec<GpuPool> {
        vec![GpuPool {
            name: "gpu".to_string(),
            capacity,
        }]
    }

    fn req(arrival: f64, service: f64, gpus: u64) -> SchedRequest {
        SchedRequest {
            pool: 0,
            arrival_s: arrival,
            service_s: service,
            gpus,
        }
    }

    #[test]
    fn uncontended_jobs_start_immediately() {
        let waits = simulate_queue(&pool(4), &[req(0.0, 10.0, 1), req(1.0, 10.0, 2)]);
        assert_eq!(waits, vec![0.0, 0.0]);
    }

    #[test]
    fn fcfs_wait_for_capacity() {
        // One GPU; second job arrives while first is running.
        let waits = simulate_queue(&pool(1), &[req(0.0, 10.0, 1), req(2.0, 5.0, 1)]);
        assert_eq!(waits[0], 0.0);
        assert!((waits[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn head_of_line_blocking() {
        // 2 GPUs. Job A takes both; job B (2 GPUs) queues; job C (1 GPU)
        // arrives later and must wait behind B even though one GPU would
        // be free sooner under backfilling.
        let waits = simulate_queue(
            &pool(2),
            &[req(0.0, 10.0, 2), req(1.0, 10.0, 2), req(2.0, 1.0, 1)],
        );
        assert_eq!(waits[0], 0.0);
        assert!((waits[1] - 9.0).abs() < 1e-9);
        // C starts when B finishes at t=20 leaves 0 free... B uses both
        // until 20; C starts at 20.
        assert!((waits[2] - 18.0).abs() < 1e-9);
    }

    #[test]
    fn independent_pools_do_not_interfere() {
        let pools = vec![
            GpuPool {
                name: "a".to_string(),
                capacity: 1,
            },
            GpuPool {
                name: "b".to_string(),
                capacity: 1,
            },
        ];
        let reqs = vec![
            SchedRequest {
                pool: 0,
                arrival_s: 0.0,
                service_s: 100.0,
                gpus: 1,
            },
            SchedRequest {
                pool: 1,
                arrival_s: 1.0,
                service_s: 1.0,
                gpus: 1,
            },
        ];
        let waits = simulate_queue(&pools, &reqs);
        assert_eq!(waits, vec![0.0, 0.0]);
    }

    #[test]
    fn oversized_request_clamped_to_capacity() {
        let waits = simulate_queue(&pool(2), &[req(0.0, 5.0, 10), req(0.0, 5.0, 1)]);
        assert_eq!(waits[0], 0.0);
        assert!((waits[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn contention_raises_mean_wait() {
        // Same workload on a loaded vs unloaded pool.
        let reqs: Vec<SchedRequest> = (0..200).map(|i| req(i as f64, 50.0, 1)).collect();
        let loaded: f64 = simulate_queue(&pool(10), &reqs).iter().sum();
        let unloaded: f64 = simulate_queue(&pool(200), &reqs).iter().sum();
        assert_eq!(unloaded, 0.0);
        assert!(loaded > 1000.0, "expected queueing, total wait {loaded}");
    }

    #[test]
    fn diurnal_arrivals_peak_at_midday() {
        let mut rng = seeded_rng(12);
        let horizon = 10.0 * 86_400.0;
        let arrivals = diurnal_arrivals(&mut rng, 40_000, horizon, 0.1);
        assert_eq!(arrivals.len(), 40_000);
        assert!(arrivals.iter().all(|&t| (0.0..horizon).contains(&t)));
        // Partition each day into a mid-day half and a night half.
        let midday = arrivals
            .iter()
            .filter(|&&t| {
                let d = t % 86_400.0;
                (21_600.0..64_800.0).contains(&d)
            })
            .count() as f64;
        let share = midday / arrivals.len() as f64;
        assert!(share > 0.6, "mid-day share {share}");
    }

    #[test]
    fn diurnal_floor_one_is_uniform() {
        let mut rng = seeded_rng(13);
        let arrivals = diurnal_arrivals(&mut rng, 20_000, 86_400.0, 1.0);
        let first_half = arrivals.iter().filter(|&&t| t < 43_200.0).count() as f64;
        let share = first_half / arrivals.len() as f64;
        assert!((share - 0.5).abs() < 0.02, "uniform share {share}");
    }

    #[test]
    fn unsorted_arrivals_accepted() {
        let waits = simulate_queue(&pool(1), &[req(5.0, 1.0, 1), req(0.0, 10.0, 1)]);
        assert!((waits[0] - 5.0).abs() < 1e-9);
        assert_eq!(waits[1], 0.0);
    }
}
