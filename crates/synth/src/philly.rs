//! Microsoft Philly trace profile (shared DNN-training cluster).
//!
//! Philly's Ganglia-style monitoring samples once a minute, so the paper
//! derives *min* and *max* SM utilization per job in addition to the mean
//! (§IV-B). The cluster retries failed jobs automatically, giving the
//! `Num Attempts > 1` feature (Table VII A1). The profile embeds the
//! Philly findings: ~35% zero-SM jobs (Fig. 4), multi-GPU jobs (14% of the
//! trace) failing ~2.5x the base rate and running very long (Table VII C1,
//! Table VIII PHI1), new users failing ~2.5x the base rate (C2), a slice
//! of long-running failures (A2), and idle jobs concentrated on the
//! 24 GB-GPU nodes (Table IV A1).

use rand::rngs::SmallRng;
use rand::Rng;

use irma_data::{Column, Frame};

use crate::config::{TraceBundle, TraceConfig};
use crate::monitor::{simulate_gpu, GpuBehavior, GpuEnvelope, GpuStats};
use crate::rng::{clamp, lognormal, seeded_rng, Categorical};
use crate::users::{Population, Tier};

/// Ganglia sampling interval (1 minute).
const MONITOR_INTERVAL_S: f64 = 60.0;

/// Philly's GPU devices are unnamed in the trace; only the memory class
/// (12 GB vs 24 GB) is known.
const PHILLY_GPU: GpuEnvelope = GpuEnvelope {
    idle_power_w: 40.0,
    dynamic_power_w: 180.0,
    memory_gb: 24.0,
};

/// Number of virtual clusters in the trace (§II).
const N_VCS: usize = 14;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Archetype {
    /// Short exploratory job that never exercises the GPU.
    IdleDebug,
    /// Idle job placed on a 24 GB node (the big-memory pool attracts
    /// speculative allocations).
    IdleBigMem,
    /// Gang-scheduled distributed training; one worker failing kills all.
    MultiGpuTraining,
    /// First jobs of inexperienced users; crash and get retried.
    NewUserFail,
    /// Long-running job that eventually fails.
    LongFail,
    /// Healthy CNN/RNN training.
    Training,
    /// Everything else.
    Misc,
}

const ARCHETYPES: [(Archetype, f64, &str); 7] = [
    (Archetype::IdleDebug, 0.19, "idle_debug"),
    (Archetype::IdleBigMem, 0.09, "idle_bigmem"),
    (Archetype::MultiGpuTraining, 0.13, "multigpu_training"),
    (Archetype::NewUserFail, 0.10, "new_user_fail"),
    (Archetype::LongFail, 0.05, "long_fail"),
    (Archetype::Training, 0.38, "training"),
    (Archetype::Misc, 0.06, "misc"),
];

struct JobDraft {
    user: String,
    vc: String,
    gpus: i64,
    attempts: i64,
    status: &'static str,
    runtime_s: f64,
    gpu_mem_gb: i64,
    stats: GpuStats,
    cpu_util: f64,
    mem_used_gb: f64,
    truth: &'static str,
}

/// Samples a user biased towards experienced (head/middle) members;
/// inexperienced tail users mostly appear through the NewUserFail
/// archetype, so that "New User" keeps its failure association (Table VII
/// C2) instead of being diluted by healthy training jobs.
fn experienced_user(rng: &mut SmallRng, users: &Population) -> String {
    let tier = if rng.gen::<f64>() < 0.05 {
        Tier::Tail
    } else if rng.gen::<f64>() < 0.45 {
        Tier::Head
    } else {
        Tier::Middle
    };
    users.name(users.sample_tier(rng, tier))
}

fn status(rng: &mut SmallRng, p_pass: f64, p_killed: f64) -> &'static str {
    let u = rng.gen::<f64>();
    if u < p_pass {
        "Pass"
    } else if u < p_pass + p_killed {
        "Killed"
    } else {
        "Failed"
    }
}

/// Failed jobs are often retried by the platform; passes usually are not.
fn attempts(rng: &mut SmallRng, st: &str, retry_bias: f64) -> i64 {
    let p_retry = match st {
        "Failed" => retry_bias,
        "Killed" => 0.1,
        _ => 0.05,
    };
    let mut n = 1i64;
    while n < 10 && rng.gen::<f64>() < p_retry {
        n += 1;
    }
    n
}

fn sim(
    rng: &mut SmallRng,
    behavior: GpuBehavior,
    runtime_s: f64,
    config: &TraceConfig,
) -> GpuStats {
    let interval = (runtime_s / config.max_monitor_samples as f64).max(MONITOR_INTERVAL_S);
    simulate_gpu(rng, behavior, &PHILLY_GPU, runtime_s, interval).stats()
}

fn draft_job(
    rng: &mut SmallRng,
    archetype: Archetype,
    truth: &'static str,
    users: &Population,
    config: &TraceConfig,
) -> JobDraft {
    let vc = format!("vc{:02}", rng.gen_range(0..N_VCS));
    match archetype {
        Archetype::IdleDebug => {
            let runtime = clamp(lognormal(rng, 5.6, 1.0), 60.0, 14_400.0);
            let st = status(rng, 0.42, 0.48);
            JobDraft {
                user: experienced_user(rng, users),
                vc,
                gpus: 1,
                attempts: attempts(rng, st, 0.3),
                status: st,
                runtime_s: runtime,
                gpu_mem_gb: if rng.gen::<f64>() < 0.7 { 12 } else { 24 },
                stats: sim(rng, GpuBehavior::Idle, runtime, config),
                cpu_util: clamp(lognormal(rng, 1.2, 0.7), 0.2, 15.0),
                mem_used_gb: clamp(lognormal(rng, 0.5, 0.6), 0.2, 8.0),
                truth,
            }
        }
        Archetype::IdleBigMem => {
            let runtime = clamp(lognormal(rng, 7.0, 1.2), 120.0, 259_200.0);
            let st = status(rng, 0.55, 0.35);
            JobDraft {
                user: experienced_user(rng, users),
                vc,
                gpus: 1,
                attempts: attempts(rng, st, 0.3),
                status: st,
                runtime_s: runtime,
                gpu_mem_gb: 24,
                stats: sim(rng, GpuBehavior::Idle, runtime, config),
                cpu_util: clamp(lognormal(rng, 1.0, 0.6), 0.2, 10.0),
                mem_used_gb: clamp(lognormal(rng, 0.6, 0.6), 0.2, 8.0),
                truth,
            }
        }
        Archetype::MultiGpuTraining => {
            // Long distributed runs (Table VIII PHI1: multi-GPU => Bin4
            // runtime), failing at ~2.5x the base rate (Table VII C1).
            let runtime = clamp(lognormal(rng, 11.0, 1.0), 7_200.0, 2_592_000.0);
            let st = status(rng, 0.40, 0.14);
            let behavior = GpuBehavior::SteadyTraining {
                level: rng.gen_range(40.0..90.0),
                jitter: 8.0,
                mem_gb: rng.gen_range(6.0..11.0),
            };
            JobDraft {
                user: experienced_user(rng, users),
                vc,
                gpus: [2, 4, 4, 8, 8, 16][rng.gen_range(0..6)],
                attempts: attempts(rng, st, 0.55),
                status: st,
                runtime_s: runtime,
                gpu_mem_gb: if rng.gen::<f64>() < 0.5 { 12 } else { 24 },
                stats: sim(rng, behavior, runtime, config),
                cpu_util: clamp(lognormal(rng, 3.0, 0.6), 5.0, 90.0),
                mem_used_gb: clamp(lognormal(rng, 2.5, 0.6), 4.0, 96.0),
                truth,
            }
        }
        Archetype::NewUserFail => {
            let runtime = clamp(lognormal(rng, 7.5, 1.6), 60.0, 1_209_600.0);
            let st = status(rng, 0.28, 0.22);
            let idle = rng.gen::<f64>() < 0.35;
            let behavior = if idle {
                GpuBehavior::Idle
            } else {
                GpuBehavior::BurstyInference {
                    duty: rng.gen_range(0.2..0.6),
                    burst_level: rng.gen_range(20.0..60.0),
                    mem_gb: rng.gen_range(1.0..8.0),
                }
            };
            JobDraft {
                user: users.name(users.sample_tier(rng, Tier::Tail)),
                vc,
                gpus: 1,
                attempts: attempts(rng, st, 0.55),
                status: st,
                runtime_s: runtime,
                gpu_mem_gb: if rng.gen::<f64>() < 0.6 { 12 } else { 24 },
                stats: sim(rng, behavior, runtime, config),
                cpu_util: clamp(lognormal(rng, 1.8, 0.8), 0.3, 50.0),
                mem_used_gb: clamp(lognormal(rng, 1.0, 0.8), 0.3, 32.0),
                truth,
            }
        }
        Archetype::LongFail => {
            let runtime = clamp(lognormal(rng, 11.5, 0.7), 28_800.0, 2_592_000.0);
            let st = status(rng, 0.1, 0.2);
            let behavior = GpuBehavior::BurstyInference {
                duty: rng.gen_range(0.5..0.9),
                burst_level: rng.gen_range(30.0..80.0),
                mem_gb: rng.gen_range(4.0..10.0),
            };
            JobDraft {
                user: experienced_user(rng, users),
                vc,
                gpus: 1,
                attempts: attempts(rng, st, 0.5),
                status: st,
                runtime_s: runtime,
                gpu_mem_gb: if rng.gen::<f64>() < 0.5 { 12 } else { 24 },
                stats: sim(rng, behavior, runtime, config),
                cpu_util: clamp(lognormal(rng, 2.5, 0.7), 1.0, 80.0),
                mem_used_gb: clamp(lognormal(rng, 2.0, 0.6), 2.0, 64.0),
                truth,
            }
        }
        Archetype::Training => {
            let runtime = clamp(lognormal(rng, 8.5, 1.4), 120.0, 1_209_600.0);
            let st = status(rng, 0.78, 0.15);
            let multi = rng.gen::<f64>() < 0.05;
            let behavior = GpuBehavior::SteadyTraining {
                level: rng.gen_range(30.0..95.0),
                jitter: rng.gen_range(4.0..12.0),
                mem_gb: rng.gen_range(2.0..11.0),
            };
            JobDraft {
                user: experienced_user(rng, users),
                vc,
                gpus: if multi { 2 } else { 1 },
                attempts: attempts(rng, st, 0.4),
                status: st,
                runtime_s: runtime,
                gpu_mem_gb: if rng.gen::<f64>() < 0.6 { 12 } else { 24 },
                stats: sim(rng, behavior, runtime, config),
                cpu_util: clamp(lognormal(rng, 3.2, 0.7), 2.0, 98.0),
                mem_used_gb: clamp(lognormal(rng, 2.0, 0.8), 1.0, 96.0),
                truth,
            }
        }
        Archetype::Misc => {
            let runtime = clamp(lognormal(rng, 7.0, 1.6), 30.0, 604_800.0);
            let st = status(rng, 0.6, 0.2);
            let behavior = if rng.gen::<f64>() < 0.15 {
                GpuBehavior::Idle
            } else {
                GpuBehavior::SteadyTraining {
                    level: rng.gen_range(5.0..70.0),
                    jitter: 10.0,
                    mem_gb: rng.gen_range(0.5..10.0),
                }
            };
            JobDraft {
                user: experienced_user(rng, users),
                vc,
                gpus: if rng.gen::<f64>() < 0.1 { 2 } else { 1 },
                attempts: attempts(rng, st, 0.3),
                status: st,
                runtime_s: runtime,
                gpu_mem_gb: if rng.gen::<f64>() < 0.6 { 12 } else { 24 },
                stats: sim(rng, behavior, runtime, config),
                cpu_util: clamp(lognormal(rng, 2.5, 1.0), 0.2, 95.0),
                mem_used_gb: clamp(lognormal(rng, 1.5, 1.0), 0.2, 64.0),
                truth,
            }
        }
    }
}

/// Generates the Philly trace bundle.
pub fn philly(config: &TraceConfig) -> TraceBundle {
    let mut rng = seeded_rng(config.seed ^ 0x9b11);
    let n_users = (config.n_jobs / 313).max(30);
    let users = Population::new("user", n_users, 1.05, 0.25, 0.25);
    let weights: Vec<f64> = ARCHETYPES.iter().map(|&(_, w, _)| w).collect();
    let mixture = Categorical::new(&weights);

    let mut drafts: Vec<JobDraft> = Vec::with_capacity(config.n_jobs);
    for _ in 0..config.n_jobs {
        let (archetype, _, truth) = ARCHETYPES[mixture.sample(&mut rng)];
        drafts.push(draft_job(&mut rng, archetype, truth, &users, config));
    }

    let n = drafts.len() as i64;
    let mut scheduler = Frame::new();
    scheduler
        .add_column("job_id", Column::from_ints(0..n))
        .expect("fresh frame");
    scheduler
        .add_column(
            "user",
            Column::from_strs(drafts.iter().map(|d| d.user.as_str())),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "vc",
            Column::from_strs(drafts.iter().map(|d| d.vc.as_str())),
        )
        .expect("fresh frame");
    scheduler
        .add_column("gpus", Column::from_ints(drafts.iter().map(|d| d.gpus)))
        .expect("fresh frame");
    scheduler
        .add_column(
            "attempts",
            Column::from_ints(drafts.iter().map(|d| d.attempts)),
        )
        .expect("fresh frame");
    scheduler
        .add_column("status", Column::from_strs(drafts.iter().map(|d| d.status)))
        .expect("fresh frame");
    scheduler
        .add_column(
            "runtime_s",
            Column::from_floats(drafts.iter().map(|d| d.runtime_s)),
        )
        .expect("fresh frame");
    scheduler
        .add_column(
            "gpu_mem_gb",
            Column::from_ints(drafts.iter().map(|d| d.gpu_mem_gb)),
        )
        .expect("fresh frame");

    let mut monitoring = Frame::new();
    monitoring
        .add_column("job_id", Column::from_ints(0..n))
        .expect("fresh frame");
    monitoring
        .add_column(
            "sm_util",
            Column::from_floats(drafts.iter().map(|d| d.stats.sm_mean)),
        )
        .expect("fresh frame");
    monitoring
        .add_column(
            "sm_util_min",
            Column::from_floats(drafts.iter().map(|d| d.stats.sm_min)),
        )
        .expect("fresh frame");
    monitoring
        .add_column(
            "sm_util_max",
            Column::from_floats(drafts.iter().map(|d| d.stats.sm_max)),
        )
        .expect("fresh frame");
    monitoring
        .add_column(
            "cpu_util",
            Column::from_floats(drafts.iter().map(|d| d.cpu_util)),
        )
        .expect("fresh frame");
    monitoring
        .add_column(
            "mem_used_gb",
            Column::from_floats(drafts.iter().map(|d| d.mem_used_gb)),
        )
        .expect("fresh frame");

    TraceBundle {
        name: "philly",
        scheduler,
        monitoring,
        truth: drafts.iter().map(|d| d.truth).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TraceBundle {
        philly(&TraceConfig {
            n_jobs: 6_000,
            seed: 31,
            max_monitor_samples: 64,
        })
    }

    #[test]
    fn shape_and_determinism() {
        let a = small();
        assert_eq!(a.n_jobs(), 6_000);
        let b = small();
        assert_eq!(a.scheduler, b.scheduler);
        assert_eq!(a.monitoring, b.monitoring);
    }

    #[test]
    fn zero_sm_share_matches_paper_band() {
        let t = small();
        let col = t.monitoring.column("sm_util").unwrap();
        let zero = (0..t.n_jobs())
            .filter(|&i| col.numeric(i).unwrap() < 1.0)
            .count() as f64
            / t.n_jobs() as f64;
        // Paper Fig. 4: ~35% for Philly.
        assert!((0.26..=0.45).contains(&zero), "zero-SM share {zero}");
    }

    #[test]
    fn multi_gpu_share_matches_paper() {
        let t = small();
        let col = t.scheduler.column("gpus").unwrap();
        let multi = (0..t.n_jobs())
            .filter(|&i| col.get(i).as_int().unwrap() > 1)
            .count() as f64
            / t.n_jobs() as f64;
        // Paper: 14% of Philly jobs use multiple GPUs.
        assert!((0.08..=0.22).contains(&multi), "multi-GPU share {multi}");
    }

    #[test]
    fn multi_gpu_jobs_fail_more() {
        let t = small();
        let gpus = t.scheduler.column("gpus").unwrap();
        let status = t.scheduler.column("status").unwrap().as_strs().unwrap();
        let rate = |multi: bool| {
            let idx: Vec<usize> = (0..t.n_jobs())
                .filter(|&i| (gpus.get(i).as_int().unwrap() > 1) == multi)
                .collect();
            idx.iter()
                .filter(|&&i| status.get(i) == Some("Failed"))
                .count() as f64
                / idx.len().max(1) as f64
        };
        assert!(
            rate(true) > 1.7 * rate(false),
            "multi {} vs single {}",
            rate(true),
            rate(false)
        );
    }

    #[test]
    fn failed_jobs_get_retries() {
        let t = small();
        let status = t.scheduler.column("status").unwrap().as_strs().unwrap();
        let attempts = t.scheduler.column("attempts").unwrap();
        let retried = |st: &str| {
            let idx: Vec<usize> = (0..t.n_jobs())
                .filter(|&i| status.get(i) == Some(st))
                .collect();
            idx.iter()
                .filter(|&&i| attempts.get(i).as_int().unwrap() > 1)
                .count() as f64
                / idx.len().max(1) as f64
        };
        assert!(retried("Failed") > 0.3);
        assert!(retried("Failed") > 2.0 * retried("Pass"));
    }

    #[test]
    fn min_sm_zero_for_idle_and_bursty() {
        let t = small();
        let sm_min = t.monitoring.column("sm_util_min").unwrap();
        let sm = t.monitoring.column("sm_util").unwrap();
        for i in 0..t.n_jobs() {
            if sm.numeric(i).unwrap() < 1.0 {
                assert_eq!(sm_min.numeric(i).unwrap(), 0.0);
            }
        }
    }

    #[test]
    fn exit_shares_in_band() {
        let t = small();
        let col = t.scheduler.column("status").unwrap().as_strs().unwrap();
        let share = |s: &str| {
            (0..t.n_jobs()).filter(|&i| col.get(i) == Some(s)).count() as f64 / t.n_jobs() as f64
        };
        assert!(share("Failed") > 0.13, "failed {}", share("Failed"));
        assert!(share("Killed") > 0.15, "killed {}", share("Killed"));
        assert!(share("Pass") > 0.45, "pass {}", share("Pass"));
    }
}
